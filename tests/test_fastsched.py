"""Property-based equivalence: compiled scheduling core ≡ reference.

The contract of :mod:`repro.hls.fastsched` is not "approximately as
good" but **identical output**: same start steps, same tie-breaks, same
errors.  These tests drive randomized graphs, delay vectors, fixed
placements and latency bounds through both implementations and assert
exact agreement — the property that lets the engine share every cache
layer, snapshot and golden value between the two cores.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.dfg import layered_dag, random_dag
from repro.errors import SchedulingError
from repro.hls import (
    alap_starts,
    asap_latency,
    asap_starts,
    density_schedule,
    fast_alap_starts,
    fast_asap_latency,
    fast_asap_starts,
    fast_density_schedule,
    fast_list_schedule,
    fast_time_frames,
    list_schedule,
    time_frames,
)
from repro.hls import fastsched
from repro.library import paper_library

graph_params = st.tuples(st.integers(1, 30), st.integers(0, 5_000))


def build(params):
    size, seed = params
    return random_dag(size, seed=seed)


def random_delays(graph, seed, high=4):
    rng = random.Random(seed)
    return {op.op_id: rng.randint(1, high) for op in graph}


def random_allocation(graph, seed):
    library = paper_library()
    rng = random.Random(seed)
    return {op.op_id: rng.choice(library.versions_of(op.rtype))
            for op in graph}


class TestTimingEquivalence:
    @given(graph_params, st.integers(0, 6))
    @settings(max_examples=60, deadline=None)
    def test_asap_alap_frames_match(self, params, slack):
        graph = build(params)
        delays = random_delays(graph, params[1])
        latency = asap_latency(graph, delays) + slack
        assert fast_asap_latency(graph, delays) == \
            asap_latency(graph, delays)
        ref = asap_starts(graph, delays)
        fast = fast_asap_starts(graph, delays)
        assert fast == ref and list(fast) == list(ref)
        ref = alap_starts(graph, delays, latency)
        fast = fast_alap_starts(graph, delays, latency)
        assert fast == ref and list(fast) == list(ref)
        ref = time_frames(graph, delays, latency)
        fast = fast_time_frames(graph, delays, latency)
        assert fast == ref and list(fast) == list(ref)

    @given(graph_params, st.integers(0, 4), st.integers(0, 99))
    @settings(max_examples=60, deadline=None)
    def test_fixed_placements_and_errors_match(self, params, slack, pick):
        graph = build(params)
        delays = random_delays(graph, params[1])
        latency = asap_latency(graph, delays) + slack
        rng = random.Random(pick)
        ops = graph.op_ids()
        fixed = {rng.choice(ops): rng.randint(0, latency)
                 for _ in range(1 + pick % 3)}
        for reference, fast, args in (
            (asap_starts, fast_asap_starts, (graph, delays)),
            (alap_starts, fast_alap_starts, (graph, delays, latency)),
            (time_frames, fast_time_frames, (graph, delays, latency)),
        ):
            try:
                expected, expected_error = reference(*args, fixed=fixed), None
            except SchedulingError as exc:
                expected, expected_error = None, str(exc)
            try:
                got, got_error = fast(*args, fixed=fixed), None
            except SchedulingError as exc:
                got, got_error = None, str(exc)
            # same outcome, same values, same message, same key order
            assert got_error == expected_error
            assert got == expected
            if expected is not None:
                assert list(got) == list(expected)

    def test_infeasible_latency_raises_in_both(self):
        graph = random_dag(12, seed=5)
        delays = random_delays(graph, 5)
        latency = asap_latency(graph, delays) - 1
        with pytest.raises(SchedulingError):
            alap_starts(graph, delays, latency)
        with pytest.raises(SchedulingError):
            fast_alap_starts(graph, delays, latency)


class TestDensityEquivalence:
    @given(graph_params, st.integers(0, 6))
    @settings(max_examples=60, deadline=None)
    def test_identical_start_steps(self, params, slack):
        graph = build(params)
        delays = random_delays(graph, params[1])
        latency = asap_latency(graph, delays) + slack
        reference = density_schedule(graph, delays, latency)
        fast = fast_density_schedule(graph, delays, latency)
        assert fast.starts == reference.starts
        assert fast.delays == reference.delays
        assert list(fast.starts) == list(reference.starts)

    @given(st.integers(2, 5), st.integers(2, 6), st.integers(0, 1_000),
           st.integers(0, 5))
    @settings(max_examples=40, deadline=None)
    def test_layered_graphs_match(self, layers, width, seed, slack):
        graph = layered_dag(layers, width, seed=seed)
        delays = random_delays(graph, seed)
        latency = asap_latency(graph, delays) + slack
        reference = density_schedule(graph, delays, latency)
        fast = fast_density_schedule(graph, delays, latency)
        assert fast.starts == reference.starts

    def test_default_latency_is_critical_path(self):
        graph = random_dag(15, seed=11)
        delays = random_delays(graph, 11)
        assert fast_density_schedule(graph, delays).starts == \
            density_schedule(graph, delays).starts

    def test_below_critical_path_raises(self):
        graph = random_dag(10, seed=2)
        delays = random_delays(graph, 2)
        latency = asap_latency(graph, delays)
        with pytest.raises(SchedulingError):
            fast_density_schedule(graph, delays, latency - 1)

    def test_empty_graph_raises(self):
        from repro.dfg import DataFlowGraph

        with pytest.raises(SchedulingError):
            fast_density_schedule(DataFlowGraph("empty"), {})

    def test_zero_delay_operations_match_reference(self):
        from repro.dfg import DataFlowGraph

        g = DataFlowGraph("zd")
        g.add("a", "add")
        g.add("b", "add", deps=["a"])
        g.add("c", "add", deps=["a"])
        delays = {"a": 1, "b": 0, "c": 1}
        for latency in (2, 3, 4):
            assert fast_density_schedule(g, delays, latency).starts == \
                density_schedule(g, delays, latency).starts

    @given(graph_params, st.integers(0, 4))
    @settings(max_examples=40, deadline=None)
    def test_delays_with_zeros_match(self, params, slack):
        graph = build(params)
        rng = random.Random(params[1])
        delays = {op.op_id: rng.randint(0, 3) for op in graph}
        latency = asap_latency(graph, delays) + slack
        assert fast_density_schedule(graph, delays, latency).starts == \
            density_schedule(graph, delays, latency).starts

    def test_precision_guard_falls_back_to_reference(self, monkeypatch):
        graph = random_dag(20, seed=9)
        delays = random_delays(graph, 9)
        latency = asap_latency(graph, delays) + 3
        expected = density_schedule(graph, delays, latency)
        monkeypatch.setattr(fastsched, "MAX_EXACT_LCM", 1)
        assert fast_density_schedule(graph, delays, latency).starts == \
            expected.starts
        monkeypatch.setattr(fastsched, "MAX_EXACT_WORK", 1)
        assert fast_density_schedule(graph, delays, latency).starts == \
            expected.starts

    def test_schedule_range_shares_base_timing(self):
        graph = random_dag(18, seed=4)
        delays = random_delays(graph, 4)
        critical = asap_latency(graph, delays)
        bounds = range(critical, critical + 5)
        ranged = fastsched.density_schedule_range(graph, delays, bounds)
        for latency in bounds:
            assert ranged[latency].starts == \
                density_schedule(graph, delays, latency).starts


class TestListEquivalence:
    @given(graph_params, st.integers(1, 3), st.integers(1, 3))
    @settings(max_examples=60, deadline=None)
    def test_identical_schedules(self, params, adders, mults):
        graph = build(params)
        allocation = random_allocation(graph, params[1])
        counts = {version.name: (adders if version.rtype == "add"
                                 else mults)
                  for version in allocation.values()}
        reference = list_schedule(graph, allocation, counts)
        fast = fast_list_schedule(graph, allocation, counts)
        assert fast.starts == reference.starts
        assert list(fast.starts) == list(reference.starts)
        assert fast.delays == reference.delays

    def test_missing_allocation_raises(self):
        graph = random_dag(5, seed=1)
        allocation = random_allocation(graph, 1)
        removed = graph.op_ids()[0]
        del allocation[removed]
        counts = {version.name: 1 for version in allocation.values()}
        with pytest.raises(SchedulingError):
            fast_list_schedule(graph, allocation, counts)

    def test_zero_budget_raises(self):
        graph = random_dag(5, seed=1)
        allocation = random_allocation(graph, 1)
        with pytest.raises(SchedulingError):
            fast_list_schedule(graph, allocation, {})

    def test_max_steps_exceeded_raises(self):
        graph = random_dag(8, seed=3)
        allocation = random_allocation(graph, 3)
        counts = {version.name: 1 for version in allocation.values()}
        with pytest.raises(SchedulingError):
            fast_list_schedule(graph, allocation, counts, max_steps=0)


class TestEngineImplEquivalence:
    """One engine per implementation, identical evaluations."""

    @given(graph_params, st.integers(0, 5), st.integers(0, 99))
    @settings(max_examples=25, deadline=None)
    def test_evaluations_identical(self, params, slack, seed):
        from repro.core import EvaluationEngine, min_latency

        graph = build(params)
        allocation = random_allocation(graph, seed)
        bound = min_latency(graph, allocation) + slack
        fast = EvaluationEngine(scheduler_impl="fast")
        reference = EvaluationEngine(scheduler_impl="reference")
        got = fast.evaluate(graph, allocation, bound)
        expected = reference.evaluate(graph, allocation, bound)
        if expected is None:
            assert got is None
            return
        assert got.schedule.starts == expected.schedule.starts
        assert got.latency == expected.latency
        assert got.area == expected.area
        assert got.binding.instance_counts() == \
            expected.binding.instance_counts()

    def test_impl_validated(self):
        from repro.core import EvaluationEngine

        from repro.errors import ReproError

        with pytest.raises(ReproError):
            EvaluationEngine(scheduler_impl="warp")
        engine = EvaluationEngine()
        graph = random_dag(4, seed=0)
        allocation = random_allocation(graph, 0)
        with pytest.raises(ReproError):
            engine.evaluate(graph, allocation, 10, scheduler_impl="warp")

    def test_env_var_selects_default(self, monkeypatch):
        from repro.core import EvaluationEngine

        monkeypatch.setenv("REPRO_SCHEDULER_IMPL", "reference")
        assert EvaluationEngine().scheduler_impl == "reference"
        monkeypatch.delenv("REPRO_SCHEDULER_IMPL")
        assert EvaluationEngine().scheduler_impl == "fast"

    def test_per_call_reference_override_avoids_the_fast_core(self,
                                                              monkeypatch):
        from repro.core import EvaluationEngine

        graph = random_dag(10, seed=8)
        allocation = random_allocation(graph, 8)
        engine = EvaluationEngine()  # fast default

        def forbidden(*args, **kwargs):
            raise AssertionError("fast core ran under a reference "
                                 "override")

        monkeypatch.setattr(fastsched, "base_timing", forbidden)
        monkeypatch.setattr(fastsched, "fast_density_schedule", forbidden)
        monkeypatch.setattr(fastsched, "fast_list_schedule", forbidden)
        result = engine.evaluate(graph, allocation, 40,
                                 scheduler_impl="reference")
        assert result is not None

    def test_per_call_override_shares_caches(self):
        from repro.core import EvaluationEngine

        graph = random_dag(12, seed=6)
        allocation = random_allocation(graph, 6)
        engine = EvaluationEngine()  # fast by default
        bound = 40
        first = engine.evaluate(graph, allocation, bound)
        # the reference override lands on the same memo entries
        hits_before = engine.stats.hits
        second = engine.evaluate(graph, allocation, bound,
                                 scheduler_impl="reference")
        assert engine.stats.hits == hits_before + 1
        assert second is first


class TestBatchedTimingMemoOverflow:
    def test_capacity_clear_mid_batch_keeps_hit_rows(self, monkeypatch):
        """Regression: a batch mixing memo *hits* with enough misses to
        trip the capacity clear used to lose the hit rows — the final
        gather read the freshly cleared memo and raised KeyError."""
        graph = random_dag(10, seed=11)
        delays_list = [random_delays(graph, seed) for seed in range(12)]
        expected = [
            (tuple(timing.asap), tuple(timing.tail), timing.critical)
            for timing in fastsched.batched_timing(graph, delays_list)
        ]
        fastsched.compile_graph(graph)._timing_cache.clear()
        monkeypatch.setattr(fastsched, "TIMING_MEMO_ENTRIES", 4)
        # warm a few rows so the next batch sees genuine memo hits...
        fastsched.batched_timing(graph, delays_list[:3])
        # ...then resolve hits and misses together: the misses overflow
        # the 4-entry memo and clear it mid-call
        batched = fastsched.batched_timing(graph, delays_list)
        assert [(tuple(t.asap), tuple(t.tail), t.critical)
                for t in batched] == expected
