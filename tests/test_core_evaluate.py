"""Direct unit tests for repro.core.evaluate."""

import pytest

from repro.bench import diffeq, fir16
from repro.library import paper_library
from repro.core.evaluate import (
    Evaluation,
    delays_of,
    evaluate_allocation,
    min_latency,
)


@pytest.fixture(scope="module")
def lib():
    return paper_library()


def fast_alloc(graph, lib):
    return {op.op_id: lib.fastest_smallest(op.rtype) for op in graph}


def reliable_alloc(graph, lib):
    return {op.op_id: lib.most_reliable(op.rtype) for op in graph}


class TestDelays:
    def test_delays_of(self, lib):
        graph = diffeq()
        delays = delays_of(fast_alloc(graph, lib))
        assert all(d == 1 for d in delays.values())
        delays = delays_of(reliable_alloc(graph, lib))
        assert all(d == 2 for d in delays.values())

    def test_min_latency(self, lib):
        assert min_latency(fir16(), fast_alloc(fir16(), lib)) == 9
        assert min_latency(fir16(), reliable_alloc(fir16(), lib)) == 18


class TestEvaluateAllocation:
    def test_returns_none_when_infeasible(self, lib):
        assert evaluate_allocation(fir16(), fast_alloc(fir16(), lib),
                                   8) is None

    def test_finds_min_area_with_slack(self, lib):
        graph = fir16()
        allocation = fast_alloc(graph, lib)
        tight = evaluate_allocation(graph, allocation, 9)
        loose = evaluate_allocation(graph, allocation, 12)
        assert loose.area <= tight.area

    def test_evaluation_is_consistent(self, lib):
        graph = diffeq()
        allocation = fast_alloc(graph, lib)
        evaluation = evaluate_allocation(graph, allocation, 7)
        assert isinstance(evaluation, Evaluation)
        assert evaluation.latency == evaluation.schedule.latency
        assert evaluation.latency <= 7
        evaluation.schedule.validate()
        evaluation.binding.validate()

    def test_engines_agree_on_feasibility(self, lib):
        graph = diffeq()
        allocation = fast_alloc(graph, lib)
        density = evaluate_allocation(graph, allocation, 6,
                                      scheduler="density")
        listed = evaluate_allocation(graph, allocation, 6,
                                     scheduler="list")
        auto = evaluate_allocation(graph, allocation, 6, scheduler="auto")
        assert density is not None and listed is not None
        assert auto.area == min(density.area, listed.area)

    def test_stop_at_area_early_exit(self, lib):
        graph = fir16()
        allocation = fast_alloc(graph, lib)
        evaluation = evaluate_allocation(graph, allocation, 12,
                                         stop_at_area=100,
                                         scheduler="density")
        # threshold met at the first (shortest) latency
        assert evaluation.latency <= 10

    def test_versions_area_model(self, lib):
        graph = fir16()
        allocation = fast_alloc(graph, lib)
        evaluation = evaluate_allocation(graph, allocation, 10,
                                         area_model="versions")
        assert evaluation.area == 6  # adder2 + mult2 counted once each


class TestMarkdownExport:
    def test_markdown_rendering(self):
        from repro.experiments import ExperimentTable

        table = ExperimentTable("T", ("a", "b"))
        table.add_row(1, 0.5)
        table.add_note("n")
        text = table.as_markdown()
        assert text.startswith("### T")
        assert "| a | b |" in text
        assert "| 1 | 0.50000 |" in text
        assert "*n*" in text
