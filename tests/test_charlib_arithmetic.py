"""Functional-correctness tests for the adder and multiplier generators.

Every generated netlist is exercised with random operands (bit-
parallel, so hundreds of vectors per pass) and compared against
Python integer arithmetic.
"""

import random

import pytest

from repro.charlib import (
    brent_kung_adder,
    bus,
    carry_save_multiplier,
    carry_skip_adder,
    drive_bus,
    kogge_stone_adder,
    leapfrog_multiplier,
    output_values,
    read_bus,
    ripple_carry_adder,
)
from repro.errors import NetlistError

ADDERS = [ripple_carry_adder, brent_kung_adder, kogge_stone_adder,
          carry_skip_adder]
MULTIPLIERS = [carry_save_multiplier, leapfrog_multiplier]


def check_adder(netlist, bits, seed=0, vectors=128, cin=None):
    rng = random.Random(seed)
    avals = [rng.randrange(2 ** bits) for _ in range(vectors)]
    bvals = [rng.randrange(2 ** bits) for _ in range(vectors)]
    stimulus = {}
    drive_bus(stimulus, "a", bits, avals, vectors)
    drive_bus(stimulus, "b", bits, bvals, vectors)
    carry_in = 0
    if "cin" in netlist.inputs:
        carry_in = cin if cin is not None else 0
        stimulus["cin"] = (2 ** vectors - 1) if carry_in else 0
    out = output_values(netlist, stimulus, vectors)
    sums = read_bus(out, bus("sum", bits) + ["cout"], vectors)
    for got, x, y in zip(sums, avals, bvals):
        assert got == x + y + carry_in, f"{netlist.name}: {x}+{y}"


def check_multiplier(netlist, bits, seed=0, vectors=128):
    rng = random.Random(seed)
    avals = [rng.randrange(2 ** bits) for _ in range(vectors)]
    bvals = [rng.randrange(2 ** bits) for _ in range(vectors)]
    stimulus = {}
    drive_bus(stimulus, "a", bits, avals, vectors)
    drive_bus(stimulus, "b", bits, bvals, vectors)
    out = output_values(netlist, stimulus, vectors)
    prods = read_bus(out, [f"prod{i}" for i in range(2 * bits)], vectors)
    for got, x, y in zip(prods, avals, bvals):
        assert got == x * y, f"{netlist.name}: {x}*{y}"


class TestAdders:
    @pytest.mark.parametrize("builder", ADDERS)
    @pytest.mark.parametrize("bits", [1, 2, 3, 4, 8, 16])
    def test_random_operands(self, builder, bits):
        check_adder(builder(bits), bits, seed=bits)

    def test_corner_vectors(self):
        bits, vectors = 8, 4
        top = 2 ** bits - 1
        pairs = [(0, 0), (top, top), (top, 1), (0b10101010, 0b01010101)]
        for builder in ADDERS:
            netlist = builder(bits)
            stimulus = {}
            drive_bus(stimulus, "a", bits, [p[0] for p in pairs], vectors)
            drive_bus(stimulus, "b", bits, [p[1] for p in pairs], vectors)
            if "cin" in netlist.inputs:
                stimulus["cin"] = 0
            out = output_values(netlist, stimulus, vectors)
            sums = read_bus(out, bus("sum", bits) + ["cout"], vectors)
            assert sums == [x + y for x, y in pairs]

    def test_ripple_with_carry_in(self):
        check_adder(ripple_carry_adder(8, with_cin=True), 8, cin=1)

    def test_relative_depths(self):
        # Kogge-Stone is the shallowest, ripple-carry the deepest.
        rca = ripple_carry_adder(8)
        bk = brent_kung_adder(8)
        ks = kogge_stone_adder(8)
        assert ks.depth() < bk.depth() < rca.depth()

    def test_relative_sizes(self):
        # prefix adders trade area for speed
        rca = ripple_carry_adder(8)
        ks = kogge_stone_adder(8)
        assert rca.gate_count() < ks.gate_count()

    def test_bad_width(self):
        with pytest.raises(NetlistError):
            ripple_carry_adder(0)
        with pytest.raises(NetlistError):
            carry_skip_adder(8, block=0)


class TestMultipliers:
    @pytest.mark.parametrize("builder", MULTIPLIERS)
    @pytest.mark.parametrize("bits", [2, 3, 4, 6, 8])
    def test_random_operands(self, builder, bits):
        check_multiplier(builder(bits), bits, seed=bits)

    def test_corner_vectors(self):
        bits, vectors = 6, 4
        top = 2 ** bits - 1
        pairs = [(0, 0), (top, top), (1, top), (top, 0)]
        for builder in MULTIPLIERS:
            netlist = builder(bits)
            stimulus = {}
            drive_bus(stimulus, "a", bits, [p[0] for p in pairs], vectors)
            drive_bus(stimulus, "b", bits, [p[1] for p in pairs], vectors)
            out = output_values(netlist, stimulus, vectors)
            prods = read_bus(out, [f"prod{i}" for i in range(2 * bits)],
                             vectors)
            assert prods == [x * y for x, y in pairs]

    def test_leapfrog_is_faster_and_larger(self):
        # the leap-frog stand-in must show Table 1's qualitative
        # profile: lower depth (faster), more gates (larger)
        csm = carry_save_multiplier(8)
        leap = leapfrog_multiplier(8)
        assert leap.depth() < csm.depth()
        assert leap.gate_count() > csm.gate_count()

    def test_bad_width(self):
        with pytest.raises(NetlistError):
            carry_save_multiplier(1)
