"""Failure-injection tests: malformed inputs must fail loudly.

Errors should never pass silently — every layer is fed adversarial
input and must raise its documented exception type, not crash with an
arbitrary one or return garbage.
"""

import pytest

from repro.bench import diffeq, fir16
from repro.charlib import Netlist
from repro.dfg import DataFlowGraph, unit_delays
from repro.errors import (
    BindingError,
    DFGError,
    LibraryError,
    NetlistError,
    ReproError,
    SchedulingError,
)
from repro.hls import Schedule, density_schedule, left_edge_bind
from repro.library import ResourceLibrary, ResourceVersion, paper_library
from repro.core import baseline_design, find_design
from repro.core.evaluate import evaluate_allocation


class TestGraphFailures:
    def test_missing_rtype_in_library(self):
        graph = diffeq()  # needs add + mul
        adders_only = paper_library().restricted_to(["adder1", "adder2"])
        with pytest.raises(LibraryError):
            find_design(graph, adders_only, 10, 10)

    def test_unvalidated_empty_graph(self):
        with pytest.raises(DFGError):
            find_design(DataFlowGraph("empty"), paper_library(), 5, 5)

    def test_foreign_rtype_operation(self):
        graph = DataFlowGraph("g")
        graph.add("f", "fft", rtype="dsp")
        with pytest.raises(LibraryError):
            find_design(graph, paper_library(), 5, 5)


class TestScheduleFailures:
    def test_corrupted_delays_detected(self):
        graph = fir16()
        schedule = density_schedule(graph, unit_delays(graph))
        schedule.delays["+1"] = 5  # lie about a delay
        with pytest.raises(SchedulingError):
            schedule.validate()

    def test_partial_schedule_latency(self):
        with pytest.raises(SchedulingError):
            Schedule(fir16(), {}, {}).latency

    def test_binding_with_stale_allocation(self):
        graph = diffeq()
        library = paper_library()
        allocation = {op.op_id: library.fastest_smallest(op.rtype)
                      for op in graph}
        schedule = density_schedule(
            graph, {o: v.delay for o, v in allocation.items()})
        allocation.pop("*1")
        with pytest.raises(BindingError):
            left_edge_bind(schedule, allocation)

    def test_evaluate_infeasible_latency_is_none(self):
        graph = fir16()
        library = paper_library()
        allocation = {op.op_id: library.most_reliable(op.rtype)
                      for op in graph}
        assert evaluate_allocation(graph, allocation, 5) is None

    def test_evaluate_bad_scheduler_name(self):
        graph = diffeq()
        library = paper_library()
        allocation = {op.op_id: library.fastest_smallest(op.rtype)
                      for op in graph}
        with pytest.raises(ReproError):
            evaluate_allocation(graph, allocation, 10, scheduler="magic")


class TestLibraryFailures:
    def test_degenerate_single_version_library_still_works(self):
        library = ResourceLibrary([
            ResourceVersion("add", "a", 1, 1, 0.9),
            ResourceVersion("mul", "m", 2, 1, 0.9),
        ])
        result = find_design(diffeq(), library, 8, 10)
        baseline = baseline_design(diffeq(), library, 8, 10,
                                   redundancy=False)
        # with one version per type both flows land on the same design
        assert result.reliability == pytest.approx(baseline.reliability)

    def test_all_versions_too_slow(self):
        library = ResourceLibrary([
            ResourceVersion("add", "a", 1, 4, 0.9),
            ResourceVersion("mul", "m", 2, 4, 0.9),
        ])
        from repro.errors import NoSolutionError

        with pytest.raises(NoSolutionError):
            find_design(diffeq(), library, 6, 100)


class TestNetlistFailures:
    def test_combinational_cycle_detected(self):
        netlist = Netlist("loopy")
        netlist.add_input("a")
        netlist.add_gate("and2", ["a", "y"], output="x")
        netlist.add_gate("inv", ["x"], output="y")
        netlist.add_output("y")
        with pytest.raises(NetlistError):
            netlist.validate()

    def test_fault_injection_on_input_rejected(self):
        from repro.charlib import inject, ripple_carry_adder, simulate
        from repro.charlib import random_stimulus
        from repro.errors import CharacterizationError

        netlist = ripple_carry_adder(2)
        stimulus = random_stimulus(netlist, 8, seed=0)
        baseline = simulate(netlist, stimulus, 8)
        with pytest.raises(CharacterizationError):
            inject(netlist, "no_such_node", baseline, 8)


class TestCliFailures:
    def test_malformed_dfg_file(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "bad.dfg"
        path.write_text("frobnicate a b\n")
        assert main(["synth", str(path), "-l", "5", "-a", "5"]) == 1

    def test_malformed_library_file(self, tmp_path):
        from repro.cli import main

        path = tmp_path / "bad.json"
        path.write_text("{}")
        assert main(["synth", "diffeq", "-l", "6", "-a", "11",
                     "--library", str(path)]) == 1
