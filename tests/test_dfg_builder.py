"""Unit tests for repro.dfg.builder."""

import pytest

from repro.dfg import DFGBuilder, chain, depth, reduction_tree


class TestBuilder:
    def test_auto_naming_by_kind(self):
        b = DFGBuilder()
        assert b.adder() == "+1"
        assert b.adder() == "+2"
        assert b.mul() == "*1"
        assert b.sub() == "-1"
        assert b.cmp() == "<1"

    def test_dependencies_wired(self):
        b = DFGBuilder("t")
        a = b.adder()
        m = b.mul(deps=[a])
        g = b.build()
        assert g.predecessors(m) == [a]

    def test_explicit_ids(self):
        b = DFGBuilder()
        assert b.add("add", op_id="sum") == "sum"

    def test_depend_chains(self):
        b = DFGBuilder()
        x = b.adder()
        y = b.adder()
        b.depend(x, y)
        assert b.build().predecessors(y) == [x]

    def test_build_validates(self):
        with pytest.raises(Exception):
            DFGBuilder("empty").build()


class TestChain:
    def test_structure(self):
        g = chain("add", 5)
        assert len(g) == 5
        assert depth(g) == 5
        assert len(g.sources()) == 1 and len(g.sinks()) == 1


class TestReductionTree:
    @pytest.mark.parametrize("leaves,expected_ops", [(2, 1), (3, 2), (4, 3),
                                                     (5, 4), (8, 7), (16, 15),
                                                     (9, 8)])
    def test_op_count(self, leaves, expected_ops):
        g = reduction_tree("add", leaves)
        assert len(g) == expected_ops

    def test_single_sink(self):
        for leaves in range(2, 12):
            g = reduction_tree("add", leaves)
            assert len(g.sinks()) == 1, f"leaves={leaves}"

    def test_log_depth(self):
        g = reduction_tree("add", 16)
        assert depth(g) == 4

    def test_too_few_leaves_rejected(self):
        with pytest.raises(ValueError):
            reduction_tree("add", 1)
