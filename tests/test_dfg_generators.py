"""Unit tests for repro.dfg.generators and repro.dfg.transforms."""

import pytest

from repro.dfg import (
    DataFlowGraph,
    chain,
    depth,
    duplicate_graph,
    fir_like,
    layered_dag,
    random_dag,
    rebalance_reduction,
)
from repro.errors import DFGError


class TestRandomDag:
    def test_deterministic_for_seed(self):
        a = random_dag(20, seed=7)
        b = random_dag(20, seed=7)
        assert a.op_ids() == b.op_ids()
        assert a.edges() == b.edges()

    def test_seed_changes_graph(self):
        a = random_dag(20, seed=1)
        b = random_dag(20, seed=2)
        assert a.edges() != b.edges()

    def test_size_and_validity(self):
        g = random_dag(40, seed=3)
        assert len(g) == 40
        g.validate()

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValueError):
            random_dag(0)


class TestLayeredDag:
    def test_depth_equals_layers(self):
        g = layered_dag(5, 3, seed=0)
        assert depth(g) == 5

    def test_size(self):
        assert len(layered_dag(4, 6, seed=1)) == 24

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            layered_dag(0, 3)


class TestFirLike:
    def test_counts(self):
        g = fir_like(8)
        counts = g.counts_by_rtype()
        assert counts == {"mul": 8, "add": 7}

    def test_accumulation_depth(self):
        # chain of 7 adds after the first product
        assert depth(fir_like(8)) == 8

    def test_too_few_taps(self):
        with pytest.raises(ValueError):
            fir_like(1)


class TestDuplicateGraph:
    def test_two_copies(self):
        g = fir_like(4)
        doubled = duplicate_graph(g)
        assert len(doubled) == 2 * len(g)
        assert len(doubled.edges()) == 2 * len(g.edges())

    def test_copies_are_disconnected(self):
        doubled = duplicate_graph(chain("add", 3))
        originals = {i for i in doubled.op_ids() if not i.startswith("d2_")}
        for producer, consumer in doubled.edges():
            assert ((producer in originals) == (consumer in originals))

    def test_three_copies(self):
        tripled = duplicate_graph(chain("add", 3), copies=3)
        assert len(tripled) == 9

    def test_bad_copy_count(self):
        with pytest.raises(DFGError):
            duplicate_graph(chain("add", 2), copies=0)


class TestRebalance:
    def test_chain_becomes_shallower(self):
        g = fir_like(8)  # 7-add accumulation chain
        balanced = rebalance_reduction(g, "add")
        assert len(balanced) == len(g)
        assert depth(balanced) < depth(g)

    def test_short_chains_untouched(self):
        g = chain("add", 2)
        balanced = rebalance_reduction(g, "add")
        assert sorted(balanced.edges()) == sorted(g.edges())

    def test_still_a_dag(self):
        balanced = rebalance_reduction(fir_like(12), "add")
        balanced.validate()

    def test_op_multiset_preserved(self):
        g = fir_like(10)
        balanced = rebalance_reduction(g, "add")
        assert balanced.counts_by_rtype() == g.counts_by_rtype()
