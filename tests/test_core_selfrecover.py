"""Tests for the self-recovery (ref [5]) baseline and voter modelling."""

import pytest

from repro.bench import diffeq
from repro.errors import NoSolutionError, ReproError
from repro.library import paper_library
from repro.core import (
    duplication_overhead,
    find_design,
    self_recovery_design,
)
from repro.reliability import duplex_reliability
from repro.reliability.nmr import nmr_with_voter, redundancy_worthwhile


@pytest.fixture(scope="module")
def lib():
    return paper_library()


class TestSelfRecovery:
    def test_reliability_uses_duplex_semantics(self, lib):
        result = self_recovery_design(diffeq(), lib, 12, 30,
                                      method="single")
        # single-version duplication: every op pair is 1-(1-r)^2
        per_op = {op.op_id: result.allocation[op.op_id].reliability
                  for op in result.graph if not op.op_id.startswith("d2_")}
        expected = 1.0
        for op_id, r in per_op.items():
            r_copy = result.allocation["d2_" + op_id].reliability
            expected *= 1 - (1 - r) * (1 - r_copy)
        assert result.reliability == pytest.approx(expected)

    def test_duplication_beats_single_copy_reliability(self, lib):
        plain = find_design(diffeq(), lib, 10, 30)
        doubled = self_recovery_design(diffeq(), lib, 10, 30)
        assert doubled.reliability > plain.reliability

    def test_schedules_both_copies(self, lib):
        result = self_recovery_design(diffeq(), lib, 12, 30)
        assert len(result.allocation) == 22
        result.schedule.validate()
        result.binding.validate()

    def test_interleaving_saves_area(self, lib):
        # scheduling both copies together costs < 2x the single design
        report = duplication_overhead(diffeq(), lib, 12, 40)
        assert report["overhead_ratio"] < 2.0
        assert report["duplicated_reliability"] > \
            report["single_reliability"]

    def test_bad_method(self, lib):
        with pytest.raises(ReproError):
            self_recovery_design(diffeq(), lib, 12, 30, method="magic")

    def test_infeasible_bounds_propagate(self, lib):
        with pytest.raises(NoSolutionError):
            self_recovery_design(diffeq(), lib, 3, 30)


class TestVoterModel:
    def test_perfect_voter_matches_plain_nmr(self):
        from repro.reliability import tmr_reliability

        assert nmr_with_voter(0.9, 3, 1.0) == pytest.approx(
            tmr_reliability(0.9))

    def test_imperfect_voter_scales(self):
        assert nmr_with_voter(0.9, 3, 0.99) == pytest.approx(
            0.99 * nmr_with_voter(0.9, 3, 1.0))

    def test_bad_voter_kills_the_benefit(self):
        # with a flaky voter, TMR is worse than a bare module
        assert not redundancy_worthwhile(0.969, voter_reliability=0.9)
        assert redundancy_worthwhile(0.969, voter_reliability=0.9999)

    def test_voter_probability_validated(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            nmr_with_voter(0.9, 3, 1.5)

    def test_duplex_is_voterless(self):
        # sanity anchor used throughout the paper comparisons
        assert duplex_reliability(0.969) == pytest.approx(0.999039)
