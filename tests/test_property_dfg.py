"""Property-based tests (hypothesis) for the DFG and timing layers."""

from hypothesis import given, settings, strategies as st

from repro.dfg import (
    DataFlowGraph,
    critical_path,
    critical_path_length,
    earliest_starts,
    random_dag,
    rebalance_reduction,
    unit_delays,
)
from repro.dfg.textio import dumps, loads

graph_params = st.tuples(
    st.integers(min_value=1, max_value=40),   # size
    st.integers(min_value=0, max_value=10_000),  # seed
    st.floats(min_value=0.05, max_value=0.95),   # edge probability
)


def build(params) -> DataFlowGraph:
    size, seed, prob = params
    return random_dag(size, seed=seed, edge_prob=prob)


delay_choices = st.sampled_from([1, 2, 3])


@st.composite
def graph_and_delays(draw):
    graph = build(draw(graph_params))
    delays = {op.op_id: draw(delay_choices) for op in graph}
    return graph, delays


class TestDagProperties:
    @given(graph_params)
    @settings(max_examples=50, deadline=None)
    def test_random_dag_is_valid(self, params):
        build(params).validate()

    @given(graph_params)
    @settings(max_examples=50, deadline=None)
    def test_topological_order_consistent(self, params):
        graph = build(params)
        order = {op_id: i for i, op_id in enumerate(graph.topological_order())}
        for producer, consumer in graph.edges():
            assert order[producer] < order[consumer]

    @given(graph_params)
    @settings(max_examples=30, deadline=None)
    def test_text_roundtrip(self, params):
        graph = build(params)
        restored = loads(dumps(graph))
        assert sorted(restored.op_ids()) == sorted(graph.op_ids())
        assert sorted(restored.edges()) == sorted(graph.edges())

    @given(graph_params)
    @settings(max_examples=30, deadline=None)
    def test_dict_roundtrip(self, params):
        graph = build(params)
        restored = DataFlowGraph.from_dict(graph.to_dict())
        assert sorted(restored.edges()) == sorted(graph.edges())


class TestTimingProperties:
    @given(graph_and_delays())
    @settings(max_examples=50, deadline=None)
    def test_asap_respects_dependencies(self, pair):
        graph, delays = pair
        starts = earliest_starts(graph, delays)
        for producer, consumer in graph.edges():
            assert starts[consumer] >= starts[producer] + delays[producer]

    @given(graph_and_delays())
    @settings(max_examples=50, deadline=None)
    def test_critical_path_is_max_finish(self, pair):
        graph, delays = pair
        starts = earliest_starts(graph, delays)
        expected = max(starts[o] + delays[o] for o in starts)
        assert critical_path_length(graph, delays) == expected

    @given(graph_and_delays())
    @settings(max_examples=50, deadline=None)
    def test_critical_path_witness_length(self, pair):
        graph, delays = pair
        length, path = critical_path(graph, delays)
        assert sum(delays[o] for o in path) == length
        # the witness is a real dependency chain
        for earlier, later in zip(path, path[1:]):
            assert later in graph.successors(earlier)

    @given(graph_and_delays())
    @settings(max_examples=30, deadline=None)
    def test_faster_delays_never_lengthen(self, pair):
        graph, delays = pair
        faster = {o: max(1, d - 1) for o, d in delays.items()}
        assert (critical_path_length(graph, faster)
                <= critical_path_length(graph, delays))


class TestRebalanceProperties:
    @given(st.integers(min_value=3, max_value=16),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_rebalance_preserves_ops_and_never_deepens(self, taps, seed):
        from repro.dfg import fir_like, depth

        graph = fir_like(max(2, taps))
        balanced = rebalance_reduction(graph, "add")
        balanced.validate()
        assert balanced.counts_by_rtype() == graph.counts_by_rtype()
        assert depth(balanced) <= depth(graph)
