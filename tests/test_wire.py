"""Round-trip property tests for the cache-service wire encodings.

The json codec is the load-bearing one — it is the only encoding
allowed on TCP — so these tests pin its three contracts for every
record shape the cache layers actually produce:

* **round trip**: ``decode(encode(x)) `` reproduces *x* (checked
  through the engine's own equality surface — keys, fingerprints,
  schedule starts — since domain objects don't define ``__eq__``);
* **byte stability**: ``encode(decode(encode(x))) == encode(x)``, so
  a value relayed through a peer re-encodes to identical bytes;
* **malice tolerance**: arbitrary / truncated / mistagged payloads
  raise :class:`CacheError` — never another exception type, never
  code execution.
"""

import json
import math
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench import get_benchmark
from repro.core import EvaluationEngine, find_design
from repro.core import wire
from repro.core.design import DesignResult
from repro.core.evaluate import Evaluation
from repro.dfg.graph import DataFlowGraph
from repro.errors import CacheError
from repro.hls.binding import Binding, Instance
from repro.hls.schedule import Schedule
from repro.library import paper_library
from repro.library.library import ResourceLibrary
from repro.library.version import ResourceVersion


@pytest.fixture(scope="module")
def lib():
    return paper_library()


@pytest.fixture(scope="module")
def layer_entries(lib):
    """Real (layer, key, value) rows: run a search, export every layer."""
    engine = EvaluationEngine()
    find_design(get_benchmark("diffeq"), lib, 8, 20, engine=engine)
    find_design(get_benchmark("hal"), lib, 6, 30, engine=engine)
    rows = [(layer, key, value)
            for layer, entries in engine.export_cache_state().items()
            for key, value in entries]
    assert rows, "the search should have populated the cache layers"
    return rows


def roundtrip(value):
    payload = wire.encode(value, "json")
    rebuilt = wire.decode(payload, "json")
    assert wire.encode(rebuilt, "json") == payload, "byte stability"
    return rebuilt


class TestLayerRecords:
    def test_every_layer_round_trips_byte_stably(self, layer_entries):
        layers_seen = set()
        for layer, key, value in layer_entries:
            layers_seen.add(layer)
            rebuilt_key, rebuilt_value = roundtrip((key, value))
            assert rebuilt_key == key  # keys are plain tuples
            assert type(rebuilt_value) is type(value)
        assert layers_seen == set(EvaluationEngine.LAYER_SHARES), \
            "every cache layer must be exercised"

    def test_evaluation_record_fields_survive(self, layer_entries):
        evaluations = [value for layer, _key, value in layer_entries
                       if layer == "evaluations" and value is not None]
        assert evaluations
        for evaluation in evaluations:
            rebuilt = roundtrip(evaluation)
            assert rebuilt.latency == evaluation.latency
            assert rebuilt.area == evaluation.area
            assert dict(rebuilt.schedule.starts) == \
                dict(evaluation.schedule.starts)
            assert dict(rebuilt.binding.op_to_instance) == \
                dict(evaluation.binding.op_to_instance)

    def test_design_result_round_trips(self, lib):
        result = find_design(get_benchmark("diffeq"), lib, 8, 20,
                             engine=EvaluationEngine(cache=False))
        rebuilt = roundtrip(result)
        assert isinstance(rebuilt, DesignResult)
        assert rebuilt.area == result.area
        assert rebuilt.latency == result.latency
        assert rebuilt.reliability == result.reliability
        assert dict(rebuilt.schedule.starts) == dict(result.schedule.starts)
        assert {op: v.name for op, v in rebuilt.allocation.items()} == \
            {op: v.name for op, v in result.allocation.items()}
        assert dict(rebuilt.instance_copies) == dict(result.instance_copies)
        assert rebuilt.method == result.method

    def test_library_and_graph_round_trip(self, lib):
        rebuilt = roundtrip(lib)
        assert isinstance(rebuilt, ResourceLibrary)
        assert rebuilt.to_dict() == lib.to_dict()
        graph = get_benchmark("ew")
        rebuilt = roundtrip(graph)
        assert isinstance(rebuilt, DataFlowGraph)
        assert rebuilt.to_dict() == graph.to_dict()

    def test_shared_subobjects_keep_identity(self, lib):
        result = find_design(get_benchmark("diffeq"), lib, 8, 20,
                             engine=EvaluationEngine(cache=False))
        rebuilt = roundtrip(result)
        # the binding references *the* schedule object, not a copy —
        # pickle guarantees this and the ref scheme must too
        assert rebuilt.binding.schedule is rebuilt.schedule
        assert rebuilt.schedule.graph is rebuilt.graph
        # twice the same object in one message decodes to one object
        a, b = roundtrip((result, result))
        assert a is b

    def test_negative_marker_and_plain_values_round_trip(self):
        samples = [
            None, True, False, 0, -7, 3.5, math.inf, "text", b"\x00\xff",
            (), ("miss",), {"k": (1, 2)}, [1, [2, [3]]],
            {("t", 1): None},  # tuple-keyed dict (negative markers)
        ]
        for value in samples:
            rebuilt = roundtrip(value)
            assert rebuilt == value
            assert type(rebuilt) is type(value)


class TestMalformedPayloads:
    @pytest.mark.parametrize("payload", [
        b"", b"\xff\xfe garbage", b"{not json",
        b"[]", b"[1,2]", b'[["x"]]',
        b'["nope",1]',                       # unknown tag
        b'["ref",0]',                        # ref before any object
        b'["ref",-1]', b'["ref",true]', b'["ref"]',
        b'["b","%%%"]', b'["b",1]',          # bad base64 / arity
        b'["d",[1,2,3]]',                    # bad dict pair
        b'["d",[["l"],1]]',                  # unhashable dict key
        b'["rv",1,2]',                       # wrong arity
        b'["rv","mult","m1","a",1,0.5,""]',  # non-numeric area
        b'["g",{"ops":"x"}]',                # malformed graph dict
        b'["sch",["g",{}],{},{},true]',      # malformed graph inside
        b'["sch",1,{},{},true]',             # schedule without graph
        b'["ins","i",1,[]]',                 # instance without version
        b'["bnd",1,[],{}]',                  # binding without schedule
        b'["ev",1,2,3,4]',
        b'["dr",1,2,3,4,5,6,7,8,9]',
        b'["lib",{"versions":1}]',
        b'["sch",["ref",0],{},{},true]',     # ref to the pending object
    ])
    def test_malformed_json_payloads_raise_cache_error(self, payload):
        with pytest.raises(CacheError):
            wire.decode(payload, "json")

    @given(st.binary(max_size=64))
    @settings(max_examples=200, deadline=None)
    def test_fuzzed_bytes_never_escape_cache_error(self, payload):
        for encoding in ("json", "pickle"):
            try:
                wire.decode(payload, encoding)
            except CacheError:
                pass

    @given(st.recursive(
        st.one_of(st.none(), st.booleans(), st.integers(),
                  st.text(max_size=8)),
        lambda leaf: st.lists(leaf, max_size=4), max_leaves=12))
    @settings(max_examples=200, deadline=None)
    def test_fuzzed_json_trees_never_escape_cache_error(self, tree):
        payload = json.dumps(tree).encode()
        try:
            rebuilt = wire.decode(payload, "json")
        except CacheError:
            return
        # anything accepted must re-encode cleanly (no poison values)
        wire.encode(rebuilt, "json")

    def test_unencodable_values_raise_cache_error(self):
        for value in ({1, 2}, object(), lambda: None):
            with pytest.raises(CacheError):
                wire.encode(value, "json")

    def test_unknown_encoding_rejected(self):
        with pytest.raises(CacheError):
            wire.encode((), "msgpack")
        with pytest.raises(CacheError):
            wire.decode(b"[]", "msgpack")


class TestPickleCodecAndSniffing:
    def test_pickle_round_trip(self, lib):
        result = find_design(get_benchmark("diffeq"), lib, 8, 20,
                             engine=EvaluationEngine(cache=False))
        rebuilt = wire.decode(wire.encode(result, "pickle"), "pickle")
        assert rebuilt.area == result.area
        assert dict(rebuilt.schedule.starts) == dict(result.schedule.starts)

    def test_undecodable_pickle_raises_cache_error(self):
        with pytest.raises(CacheError, match="undecodable cache frame"):
            wire.decode(b"\x80\x05garbage", "pickle")

    def test_sniffing_separates_the_codecs(self):
        for message in (("ping",), ("ok", ("pong", 2)), None, 3):
            assert wire.sniff_encoding(wire.encode(message, "json")) \
                == "json"
            assert wire.sniff_encoding(wire.encode(message, "pickle")) \
                == "pickle"

    def test_json_payloads_contain_no_pickle_opcodes(self, lib):
        # the structural no-pickle-on-TCP guarantee: a json frame is
        # pure ASCII and never starts with the pickle PROTO opcode
        result = find_design(get_benchmark("diffeq"), lib, 8, 20,
                             engine=EvaluationEngine(cache=False))
        payload = wire.encode(("ok", ("done", result)), "json")
        payload.decode("ascii")
        assert not payload.startswith(b"\x80")
        assert pickle.dumps(result, 5)[:1] == b"\x80"
