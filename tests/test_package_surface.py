"""Tests for the top-level package surface and lazy exports."""

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_eager_exports(self):
        assert repro.DataFlowGraph is not None
        assert repro.ResourceLibrary is not None
        assert callable(repro.paper_library)

    def test_lazy_core_exports(self):
        # these import repro.core on first access
        assert callable(repro.find_design)
        assert callable(repro.baseline_design)
        assert callable(repro.combined_design)
        assert repro.DesignResult is not None

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.frobnicate

    def test_exception_hierarchy(self):
        assert issubclass(repro.DFGError, repro.ReproError)
        assert issubclass(repro.LibraryError, repro.ReproError)
        assert issubclass(repro.SchedulingError, repro.ReproError)
        assert issubclass(repro.BindingError, repro.ReproError)
        assert issubclass(repro.NoSolutionError, repro.ReproError)
        assert issubclass(repro.CharacterizationError, repro.ReproError)

    def test_docstring_quickstart_runs(self):
        # the snippet in the package docstring must actually work
        from repro import paper_library, find_design
        from repro.bench import fir16

        design = find_design(fir16(), paper_library(),
                             latency_bound=11, area_bound=8)
        assert 0 < design.reliability < 1
        assert design.area <= 8
        assert design.latency <= 11

    def test_subpackages_import(self):
        import repro.bench
        import repro.charlib
        import repro.core
        import repro.dfg
        import repro.experiments
        import repro.hls
        import repro.library
        import repro.reliability

        for module in (repro.bench, repro.charlib, repro.core, repro.dfg,
                       repro.experiments, repro.hls, repro.library,
                       repro.reliability):
            assert module.__doc__
