"""Property-based tests for schedulers, binding and reliability math."""

import math

from hypothesis import given, settings, strategies as st

from repro.dfg import random_dag
from repro.hls import (
    asap_latency,
    density_schedule,
    left_edge_bind,
    list_schedule,
)
from repro.library import ResourceVersion, paper_library
from repro.reliability import (
    duplex_reliability,
    nmr_reliability,
    redundant_reliability,
    serial,
)

probability = st.floats(min_value=0.0, max_value=1.0,
                        allow_nan=False, allow_infinity=False)
graph_params = st.tuples(st.integers(1, 30), st.integers(0, 5_000))


def build(params):
    size, seed = params
    return random_dag(size, seed=seed)


def paper_allocation(graph, seed):
    import random

    library = paper_library()
    rng = random.Random(seed)
    return {op.op_id: rng.choice(library.versions_of(op.rtype))
            for op in graph}


class TestSchedulerProperties:
    @given(graph_params, st.integers(0, 6))
    @settings(max_examples=40, deadline=None)
    def test_density_schedule_valid_at_any_slack(self, params, slack):
        graph = build(params)
        allocation = paper_allocation(graph, params[1])
        delays = {o: v.delay for o, v in allocation.items()}
        budget = asap_latency(graph, delays) + slack
        schedule = density_schedule(graph, delays, budget)
        schedule.validate()
        assert schedule.latency <= budget

    @given(graph_params, st.integers(0, 6))
    @settings(max_examples=40, deadline=None)
    def test_binding_never_overlaps(self, params, slack):
        graph = build(params)
        allocation = paper_allocation(graph, params[1] + 1)
        delays = {o: v.delay for o, v in allocation.items()}
        schedule = density_schedule(
            graph, delays, asap_latency(graph, delays) + slack)
        binding = left_edge_bind(schedule, allocation)
        binding.validate()  # raises on overlap

    @given(graph_params, st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_list_schedule_valid_and_counts_respected(self, params,
                                                      adders, mults):
        graph = build(params)
        library = paper_library()
        allocation = {op.op_id: library.fastest_smallest(op.rtype)
                      for op in graph}
        counts = {"adder2": adders, "mult2": mults}
        schedule = list_schedule(graph, allocation, counts)
        schedule.validate()
        binding = left_edge_bind(schedule, allocation)
        for version_name, used in binding.instance_counts().items():
            assert used <= counts[version_name]

    @given(graph_params)
    @settings(max_examples=30, deadline=None)
    def test_list_schedule_reaches_critical_path_with_many_instances(
            self, params):
        graph = build(params)
        library = paper_library()
        allocation = {op.op_id: library.fastest_smallest(op.rtype)
                      for op in graph}
        delays = {o: v.delay for o, v in allocation.items()}
        counts = {"adder2": len(graph), "mult2": len(graph)}
        schedule = list_schedule(graph, allocation, counts)
        assert schedule.latency == asap_latency(graph, delays)


class TestReliabilityProperties:
    @given(st.lists(probability, min_size=0, max_size=20))
    @settings(max_examples=100)
    def test_serial_bounded_by_weakest_component(self, values):
        result = serial(values)
        assert 0.0 <= result <= 1.0
        if values:
            assert result <= min(values) + 1e-12

    @given(probability, st.integers(1, 9))
    @settings(max_examples=100)
    def test_redundant_reliability_is_probability(self, r, copies):
        assert 0.0 <= redundant_reliability(r, copies) <= 1.0

    @given(probability)
    @settings(max_examples=100)
    def test_duplex_never_hurts(self, r):
        assert duplex_reliability(r) >= r - 1e-12

    @given(st.floats(min_value=0.5, max_value=1.0))
    @settings(max_examples=100)
    def test_nmr_helps_above_half(self, r):
        assert nmr_reliability(r, 3) >= r - 1e-12
        assert nmr_reliability(r, 5) >= nmr_reliability(r, 3) - 1e-12

    @given(st.floats(min_value=0.0, max_value=0.5))
    @settings(max_examples=100)
    def test_nmr_hurts_below_half(self, r):
        assert nmr_reliability(r, 3) <= r + 1e-12

    @given(st.floats(min_value=0.01, max_value=0.999999),
           st.integers(1, 7))
    @settings(max_examples=100)
    def test_even_copies_monotone(self, r, k):
        # the detection+rollback family 1-(1-r)^n is monotone in n
        assert (redundant_reliability(r, 2 * k)
                <= redundant_reliability(r, 2 * k + 2) + 1e-12)


class TestVersionProperties:
    versions = st.builds(
        ResourceVersion,
        rtype=st.just("add"),
        name=st.text(alphabet="abcdef", min_size=1, max_size=6),
        area=st.integers(1, 10),
        delay=st.integers(1, 5),
        reliability=st.floats(min_value=0.01, max_value=1.0),
    )

    @given(versions, versions)
    @settings(max_examples=100)
    def test_dominance_is_antisymmetric(self, a, b):
        if a.dominates(b):
            assert not b.dominates(a)

    @given(versions)
    @settings(max_examples=50)
    def test_dominance_is_irreflexive(self, v):
        assert not v.dominates(v)

    @given(versions)
    @settings(max_examples=50)
    def test_roundtrip(self, v):
        assert ResourceVersion.from_dict(v.to_dict()) == v
