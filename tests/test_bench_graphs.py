"""Structural tests for the paper's benchmark graphs."""

import pytest

from repro.bench import benchmark_names, diffeq, ewf, fir16, get_benchmark
from repro.dfg import critical_path_length, depth, unit_delays
from repro.errors import ReproError
from repro.library import paper_library


class TestFir:
    def test_operation_counts(self):
        g = fir16()
        assert len(g) == 23
        assert g.counts_by_rtype() == {"add": 15, "mul": 8}

    def test_unit_critical_path(self):
        g = fir16()
        assert depth(g) == 9  # pre-add, multiply, 7-add chain

    def test_type1_latency_is_paper_18(self):
        # the paper: with adder1+mult1 only, minimum latency is 18
        g = fir16()
        lib = paper_library()
        delays = {op.op_id: lib.most_reliable(op.rtype).delay for op in g}
        assert critical_path_length(g, delays) == 18

    def test_reliability_product_type2(self):
        assert 0.969 ** 23 == pytest.approx(0.48467, abs=5e-5)

    def test_single_sink(self):
        assert len(fir16().sinks()) == 1


class TestEwf:
    def test_operation_counts(self):
        g = ewf()
        assert len(g) == 25
        assert g.counts_by_rtype() == {"add": 17, "mul": 8}

    def test_unit_critical_path_matches_paper_grid(self):
        # Table 2(b)'s latency grid starts at 13
        assert depth(ewf()) == 13

    def test_reliability_product_type2(self):
        assert 0.969 ** 25 == pytest.approx(0.45509, abs=1e-4)

    def test_validates(self):
        ewf().validate()


class TestDiffeq:
    def test_operation_counts(self):
        g = diffeq()
        counts = {}
        for op in g:
            counts[op.kind] = counts.get(op.kind, 0) + 1
        assert counts == {"mul": 6, "sub": 2, "add": 2, "cmp": 1}
        assert g.counts_by_rtype() == {"mul": 6, "add": 5}

    def test_unit_critical_path_matches_paper_grid(self):
        # Table 2(c)'s latency grid starts at 5
        assert depth(diffeq()) == 5

    def test_reliability_product_type2(self):
        assert 0.969 ** 11 == pytest.approx(0.70723, abs=5e-5)

    def test_critical_chain(self):
        g = diffeq()
        from repro.dfg import critical_path

        _, path = critical_path(g, unit_delays(g))
        assert path == ["*1", "*4", "*6", "-1", "-2"]


class TestRegistry:
    def test_names(self):
        assert benchmark_names() == ["ar", "diffeq", "ew", "ewf34", "fir"]

    @pytest.mark.parametrize("name,ops", [
        ("fir", 23), ("FIR16", 23), ("ew", 25), ("ewf", 25), ("EWF25", 25),
        ("diffeq", 11), ("hal", 11),
    ])
    def test_lookup_with_aliases(self, name, ops):
        assert len(get_benchmark(name)) == ops

    def test_unknown_name(self):
        with pytest.raises(ReproError):
            get_benchmark("aes")

    def test_fresh_copies(self):
        a = get_benchmark("fir")
        b = get_benchmark("fir")
        assert a is not b
