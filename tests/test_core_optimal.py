"""Tests for the exhaustive oracle and greedy-vs-optimal quality."""

import pytest

from repro.dfg import DFGBuilder, random_dag
from repro.errors import NoSolutionError, ReproError
from repro.library import paper_library
from repro.core import find_design, optimal_design


@pytest.fixture(scope="module")
def lib():
    return paper_library()


def small_mixed():
    b = DFGBuilder("small")
    a1 = b.adder()
    m1 = b.mul(deps=[a1])
    a2 = b.adder(deps=[m1])
    b.adder(deps=[a2])
    return b.build()


class TestOptimal:
    def test_small_graph_solved(self, lib):
        result = optimal_design(small_mixed(), lib, 6, 8)
        assert result.method == "optimal"
        assert result.meets_bounds()
        result.schedule.validate()
        result.binding.validate()

    def test_rejects_large_graphs(self, lib):
        from repro.bench import fir16

        with pytest.raises(ReproError):
            optimal_design(fir16(), lib, 11, 9)

    def test_infeasible(self, lib):
        with pytest.raises(NoSolutionError):
            optimal_design(small_mixed(), lib, 2, 8)

    def test_loose_bounds_give_all_most_reliable(self, lib):
        result = optimal_design(small_mixed(), lib, 20, 40)
        assert result.reliability == pytest.approx(0.999 ** 4, rel=1e-9)


class TestGreedyVsOptimal:
    """The oracle checks: greedy never beats optimal, and stays close."""

    @pytest.mark.parametrize("seed", range(8))
    def test_greedy_bounded_by_optimal(self, lib, seed):
        graph = random_dag(6, seed=seed)
        bounds = (8, 10)
        try:
            best = optimal_design(graph, lib, *bounds)
        except NoSolutionError:
            with pytest.raises(NoSolutionError):
                find_design(graph, lib, *bounds)
            return
        greedy = find_design(graph, lib, *bounds)
        assert greedy.reliability <= best.reliability + 1e-12
        # quality: the greedy is within 5% of the optimum on these
        assert greedy.reliability >= 0.95 * best.reliability

    @pytest.mark.parametrize("bounds", [(4, 6), (5, 8), (8, 12)])
    def test_structured_graph(self, lib, bounds):
        graph = small_mixed()
        try:
            best = optimal_design(graph, lib, *bounds)
        except NoSolutionError:
            return
        greedy = find_design(graph, lib, *bounds)
        assert greedy.reliability <= best.reliability + 1e-12
        assert greedy.reliability >= 0.97 * best.reliability
