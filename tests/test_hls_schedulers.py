"""Unit tests for the density and list schedulers."""

import pytest

from repro.bench import diffeq, ewf, fir16
from repro.dfg import DataFlowGraph, random_dag, unit_delays
from repro.errors import SchedulingError
from repro.hls import (
    asap_schedule,
    density_schedule,
    left_edge_bind,
    list_schedule,
    min_latency_with_counts,
)
from repro.library import paper_library


def fast_allocation(graph):
    lib = paper_library()
    return {op.op_id: lib.fastest_smallest(op.rtype) for op in graph}


class TestDensityScheduler:
    def test_validates_dependencies(self):
        g = fir16()
        s = density_schedule(g, unit_delays(g))
        s.validate()

    def test_minimum_latency_default(self):
        g = fir16()
        s = density_schedule(g, unit_delays(g))
        assert s.latency == 9  # FIR unit critical path

    def test_respects_latency_budget(self):
        g = fir16()
        s = density_schedule(g, unit_delays(g), latency=12)
        assert s.latency <= 12

    def test_below_critical_path_rejected(self):
        g = fir16()
        with pytest.raises(SchedulingError):
            density_schedule(g, unit_delays(g), latency=8)

    def test_empty_graph_rejected(self):
        with pytest.raises(SchedulingError):
            density_schedule(DataFlowGraph("empty"), {})

    def test_balancing_reduces_instances_vs_asap(self):
        # On FIR at a loose latency the density scheduler should use
        # no more adder instances than plain ASAP (usually fewer).
        g = fir16()
        allocation = fast_allocation(g)
        delays = {o: v.delay for o, v in allocation.items()}
        dense = left_edge_bind(density_schedule(g, delays, 11), allocation)
        eager = left_edge_bind(asap_schedule(g, delays), allocation)
        assert dense.area <= eager.area

    def test_multicycle_operations(self):
        g = diffeq()
        lib = paper_library()
        allocation = {op.op_id: lib.most_reliable(op.rtype) for op in g}
        delays = {o: v.delay for o, v in allocation.items()}
        s = density_schedule(g, delays)
        s.validate()
        assert s.latency == 10  # critical path with 2cc ops

    @pytest.mark.parametrize("seed", range(5))
    def test_random_graphs(self, seed):
        g = random_dag(30, seed=seed)
        s = density_schedule(g, unit_delays(g), latency=20)
        s.validate()


class TestListScheduler:
    def test_single_instance_serializes(self):
        g = diffeq()
        allocation = fast_allocation(g)
        s = list_schedule(g, allocation, {"adder2": 1, "mult2": 1})
        s.validate()
        # six multiplications on one multiplier need at least 6 steps
        assert s.latency >= 6

    def test_more_instances_never_slower(self):
        g = ewf()
        allocation = fast_allocation(g)
        lat1 = min_latency_with_counts(g, allocation,
                                       {"adder2": 1, "mult2": 1})
        lat2 = min_latency_with_counts(g, allocation,
                                       {"adder2": 2, "mult2": 2})
        assert lat2 <= lat1

    def test_reaches_critical_path_with_enough_instances(self):
        g = fir16()
        allocation = fast_allocation(g)
        latency = min_latency_with_counts(g, allocation,
                                          {"adder2": 8, "mult2": 8})
        assert latency == 9

    def test_missing_budget_rejected(self):
        g = diffeq()
        allocation = fast_allocation(g)
        with pytest.raises(SchedulingError):
            list_schedule(g, allocation, {"adder2": 1})

    def test_missing_allocation_rejected(self):
        g = diffeq()
        allocation = fast_allocation(g)
        allocation.pop("*1")
        with pytest.raises(SchedulingError):
            list_schedule(g, allocation, {"adder2": 1, "mult2": 1})

    def test_binding_respects_counts(self):
        g = fir16()
        allocation = fast_allocation(g)
        s = list_schedule(g, allocation, {"adder2": 2, "mult2": 1})
        binding = left_edge_bind(s, allocation)
        counts = binding.instance_counts()
        assert counts["adder2"] <= 2
        assert counts["mult2"] <= 1
