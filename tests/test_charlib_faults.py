"""Unit tests for fault injection, masking models and characterization."""

import pytest

from repro.charlib import (
    CharacterizationConfig,
    MaskingModel,
    Netlist,
    average_masking,
    brent_kung_adder,
    characterize_component,
    characterize_library,
    inject,
    kogge_stone_adder,
    masking_campaign,
    node_qcritical,
    paper_fitted_qs,
    paper_scale,
    random_stimulus,
    ripple_carry_adder,
    simulate,
)
from repro.errors import CharacterizationError
from repro.library import PAPER_QCRITICAL


def and_gate() -> Netlist:
    n = Netlist("and")
    n.add_input("a")
    n.add_input("b")
    n.add_gate("and2", ["a", "b"], output="y")
    n.add_output("y")
    return n


def masked_chain() -> Netlist:
    """x feeds an AND with constant-0-ish second leg rarely enabling."""
    n = Netlist("chain")
    n.add_input("a")
    n.add_input("b")
    n.add_input("c")
    x = n.add_gate("inv", ["a"], output="x")
    y = n.add_gate("and2", [x, "b"], output="y")
    z = n.add_gate("and2", [y, "c"], output="z")
    n.add_output("z")
    return n


class TestInjection:
    def test_output_node_always_propagates(self):
        n = and_gate()
        stim = random_stimulus(n, 64, seed=1)
        baseline = simulate(n, stim, 64)
        result = inject(n, "y", baseline, 64)
        assert result.propagation_probability == 1.0
        assert result.masking_probability == 0.0

    def test_masked_node_propagates_conditionally(self):
        n = masked_chain()
        # x propagates only when b & c are both 1: probability 1/4
        stim = {"a": 0, "b": 0b1100, "c": 0b1010}
        baseline = simulate(n, stim, 4)
        result = inject(n, "x", baseline, 4)
        assert result.propagated == 1  # only the b=c=1 vector
        assert result.masking_probability == pytest.approx(0.75)

    def test_unknown_node(self):
        n = and_gate()
        stim = random_stimulus(n, 8, seed=0)
        baseline = simulate(n, stim, 8)
        with pytest.raises(CharacterizationError):
            inject(n, "ghost", baseline, 8)

    def test_campaign_covers_all_gates(self):
        n = masked_chain()
        results = masking_campaign(n, vector_count=128, seed=3)
        assert set(results) == {"x", "y", "z"}
        for r in results.values():
            assert 0.0 <= r.masking_probability <= 1.0

    def test_campaign_deterministic(self):
        n = brent_kung_adder(4)
        a = masking_campaign(n, vector_count=64, seed=9)
        b = masking_campaign(n, vector_count=64, seed=9)
        assert {k: v.propagated for k, v in a.items()} == \
               {k: v.propagated for k, v in b.items()}

    def test_average_masking(self):
        n = masked_chain()
        results = masking_campaign(n, vector_count=256, seed=1)
        assert 0.0 < average_masking(results) < 1.0

    def test_average_masking_empty(self):
        with pytest.raises(CharacterizationError):
            average_masking({})

    def test_prefix_adders_mask_more_than_ripple(self):
        # ripple-carry XOR chains propagate nearly everything; prefix
        # trees have AND/OR cells that logically absorb upsets
        rca = average_masking(masking_campaign(ripple_carry_adder(8), 128, 5))
        ks = average_masking(masking_campaign(kogge_stone_adder(8), 128, 5))
        assert ks > rca


class TestMaskingModel:
    def test_electrical_decay(self):
        model = MaskingModel(attenuation=0.5)
        assert model.electrical_survival(0) == 1.0
        assert model.electrical_survival(2) == pytest.approx(
            model.electrical_survival(1) ** 2)

    def test_latching_probability_bounds(self):
        model = MaskingModel(pulse_width=0.2, clock_period=1.0)
        assert model.latching_probability(0) == pytest.approx(0.2)
        wide = MaskingModel(pulse_width=5.0, clock_period=1.0)
        assert wide.latching_probability(0) == 1.0

    def test_derating_combines(self):
        model = MaskingModel(attenuation=0.0, pulse_width=1.0)
        assert model.derating(0, 0.5) == pytest.approx(0.5)

    def test_bad_parameters(self):
        with pytest.raises(CharacterizationError):
            MaskingModel(attenuation=-1.0)
        with pytest.raises(CharacterizationError):
            MaskingModel(pulse_width=0.0)
        with pytest.raises(CharacterizationError):
            MaskingModel(clock_period=-2.0)

    def test_bad_propagation(self):
        model = MaskingModel()
        with pytest.raises(CharacterizationError):
            model.derating(1, 1.5)


class TestCharacterization:
    def test_qcritical_positive_and_load_sensitive(self):
        n = brent_kung_adder(4)
        config = CharacterizationConfig()
        charges = node_qcritical(n, config)
        assert all(q > 0 for q in charges.values())
        # a higher-fanout node should have a larger critical charge
        fanout = n.fanout()
        hi = max(charges, key=lambda net: fanout.get(net, 0))
        lo = min(charges, key=lambda net: fanout.get(net, 0))
        if fanout.get(hi, 0) != fanout.get(lo, 0):
            assert charges[hi] > charges[lo]

    def test_component_report(self):
        report = characterize_component(ripple_carry_adder(4))
        assert report.gate_count == ripple_carry_adder(4).gate_count()
        assert report.raw_ser > 0
        assert report.effective_qcritical > 0
        assert set(report.summary()) >= {"gates", "depth", "raw_ser"}

    def test_library_generation(self):
        netlists = {
            "adder1": ("add", ripple_carry_adder(4)),
            "adder3": ("add", kogge_stone_adder(4)),
        }
        lib, reports = characterize_library(netlists, anchor="adder1")
        assert lib.version("adder1").reliability == pytest.approx(0.999)
        assert 0 < lib.version("adder3").reliability < 1
        assert set(reports) == {"adder1", "adder3"}

    def test_library_anchor_must_exist(self):
        netlists = {"adder1": ("add", ripple_carry_adder(4))}
        with pytest.raises(CharacterizationError):
            characterize_library(netlists, anchor="zz")

    def test_bad_config(self):
        with pytest.raises(CharacterizationError):
            CharacterizationConfig(qcrit_base=0.0)
        with pytest.raises(CharacterizationError):
            CharacterizationConfig(vectors=2)


class TestPaperChain:
    def test_fitted_qs_magnitude(self):
        # the fit lands in the expected 1e-21 Coulomb regime
        assert 5e-21 < paper_fitted_qs() < 15e-21

    def test_chain_predicts_kogge_stone_0987(self):
        # headline validation: fitting Qs on (ripple, Brent-Kung)
        # reproduces the paper's third data point
        scale = paper_scale()
        predicted = scale.reliability_for(PAPER_QCRITICAL["adder3"])
        assert predicted == pytest.approx(0.987, abs=5e-4)

    def test_anchor_reproduced(self):
        scale = paper_scale()
        assert scale.reliability_for(
            PAPER_QCRITICAL["adder1"]) == pytest.approx(0.999, abs=1e-9)

    def test_brent_kung_reproduced(self):
        scale = paper_scale()
        assert scale.reliability_for(
            PAPER_QCRITICAL["adder2"]) == pytest.approx(0.969, abs=1e-6)
