"""Unit tests for repro.dfg.graph and repro.dfg.node."""

import pytest

from repro.dfg import DataFlowGraph, Operation
from repro.errors import DFGError


def diamond() -> DataFlowGraph:
    g = DataFlowGraph("diamond")
    g.add("a", "add")
    g.add("b", "mul", deps=["a"])
    g.add("c", "add", deps=["a"])
    g.add("d", "add", deps=["b", "c"])
    return g


class TestOperation:
    def test_rtype_derived_from_kind(self):
        assert Operation("x", "add").rtype == "add"
        assert Operation("x", "sub").rtype == "add"
        assert Operation("x", "cmp").rtype == "add"
        assert Operation("x", "mul").rtype == "mul"

    def test_explicit_rtype_wins(self):
        op = Operation("x", "add", rtype="alu")
        assert op.rtype == "alu"

    def test_unknown_kind_without_rtype_rejected(self):
        with pytest.raises(DFGError):
            Operation("x", "fft")

    def test_unknown_kind_with_rtype_accepted(self):
        assert Operation("x", "fft", rtype="dsp").rtype == "dsp"

    def test_empty_id_rejected(self):
        with pytest.raises(DFGError):
            Operation("", "add")

    def test_glyphs(self):
        assert Operation("x", "add").glyph == "+"
        assert Operation("x", "mul").glyph == "*"
        assert Operation("x", "sub").glyph == "-"

    def test_display_name_prefers_label(self):
        assert Operation("x", "add", label="sum0").display_name() == "sum0"
        assert Operation("x", "add").display_name() == "x"

    def test_dict_roundtrip(self):
        op = Operation("n1", "mul", label="prod")
        assert Operation.from_dict(op.to_dict()) == op

    def test_from_dict_missing_key(self):
        with pytest.raises(DFGError):
            Operation.from_dict({"id": "x"})


class TestDataFlowGraph:
    def test_len_and_contains(self):
        g = diamond()
        assert len(g) == 4
        assert "a" in g and "z" not in g

    def test_duplicate_id_rejected(self):
        g = diamond()
        with pytest.raises(DFGError):
            g.add("a", "add")

    def test_edge_to_unknown_node_rejected(self):
        g = diamond()
        with pytest.raises(DFGError):
            g.add_edge("a", "nope")

    def test_self_edge_rejected(self):
        g = diamond()
        with pytest.raises(DFGError):
            g.add_edge("a", "a")

    def test_cycle_rejected_and_rolled_back(self):
        g = diamond()
        with pytest.raises(DFGError):
            g.add_edge("d", "a")
        # graph must still validate after the failed insertion
        g.validate()
        assert ("d", "a") not in g.edges()

    def test_predecessors_successors(self):
        g = diamond()
        assert set(g.predecessors("d")) == {"b", "c"}
        assert set(g.successors("a")) == {"b", "c"}

    def test_sources_sinks(self):
        g = diamond()
        assert g.sources() == ["a"]
        assert g.sinks() == ["d"]

    def test_topological_order_respects_edges(self):
        g = diamond()
        order = g.topological_order()
        for producer, consumer in g.edges():
            assert order.index(producer) < order.index(consumer)

    def test_counts_by_rtype(self):
        assert diamond().counts_by_rtype() == {"add": 3, "mul": 1}

    def test_copy_is_independent(self):
        g = diamond()
        clone = g.copy()
        clone.add("e", "add", deps=["d"])
        assert len(g) == 4 and len(clone) == 5

    def test_relabeled(self):
        g = diamond().relabeled("p_")
        assert set(g.op_ids()) == {"p_a", "p_b", "p_c", "p_d"}
        assert ("p_a", "p_b") in g.edges()

    def test_merged_with_disjoint(self):
        g = diamond()
        merged = g.merged_with(g.relabeled("q_"))
        assert len(merged) == 8

    def test_merged_with_collision_rejected(self):
        g = diamond()
        with pytest.raises(DFGError):
            g.merged_with(g)

    def test_validate_empty_graph(self):
        with pytest.raises(DFGError):
            DataFlowGraph("empty").validate()

    def test_dict_roundtrip(self):
        g = diamond()
        restored = DataFlowGraph.from_dict(g.to_dict())
        assert restored.op_ids() == g.op_ids()
        assert sorted(restored.edges()) == sorted(g.edges())
        assert restored.name == g.name

    def test_unknown_operation_lookup(self):
        with pytest.raises(DFGError):
            diamond().operation("zz")
