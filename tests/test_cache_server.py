"""Concurrency and fault-injection harness for the live cache server.

The server's contract has three parts, each locked down here:

* **protocol hygiene** — length-prefixed frames round-trip; anything
  malformed (oversized, truncated, undecodable, a peer that goes
  silent) surfaces as a clean :class:`~repro.errors.CacheError` on a
  bounded clock, never a hang and never a crash of the serving
  process;
* **shared state** — concurrent clients hammering overlapping
  get/put traffic lose no updates and never deadlock, with LRU bounds
  enforced server-side;
* **transparency** — engines attached to a server produce results
  identical to engine-off runs, *including* when the server is killed
  mid-run (clients fall back to their local caches) and when the
  server was never reachable at all.
"""

import multiprocessing
import os
import pickle
import socket
import struct
import threading
import time

import pytest

from repro.bench import diffeq, fir16
from repro.core import (
    EvaluationEngine,
    attach_engine,
    cache_server,
    detach_engine,
    find_design,
    sweep_bounds,
)
from repro.core.cache_server import (
    PROTOCOL_VERSION,
    CacheClient,
    CacheServer,
    evaluate_batch_remote,
    synthesize_remote,
    _recv_frame,
    _send_frame,
)
from repro.core import wire
from repro.errors import CacheError, NoSolutionError, ProtocolError
from repro.library import paper_library


@pytest.fixture(scope="module")
def lib():
    return paper_library()


@pytest.fixture()
def server(tmp_path):
    with CacheServer(str(tmp_path / "cache.sock")) as srv:
        yield srv


def design_fingerprint(result):
    if result is None:
        return None
    return (result.area, result.latency, result.reliability,
            dict(result.schedule.starts),
            dict(result.binding.op_to_instance))


def point_fingerprints(points):
    return [(p.latency_bound, p.area_bound, design_fingerprint(p.result))
            for p in points]


# ----------------------------------------------------------------------
# protocol hygiene
# ----------------------------------------------------------------------
class TestFraming:
    def _pair(self):
        a, b = socket.socketpair()
        a.settimeout(2.0)
        b.settimeout(2.0)
        return a, b

    def test_round_trip(self):
        a, b = self._pair()
        message = ("put", "density", (("g",), "sig", 3), [1, 2, 3])
        _send_frame(a, message)
        assert _recv_frame(b) == message

    def test_clean_eof_is_none(self):
        a, b = self._pair()
        a.close()
        assert _recv_frame(b) is None

    def test_oversized_send_rejected(self):
        a, _b = self._pair()
        with pytest.raises(CacheError, match="exceeds"):
            _send_frame(a, ("put", "x" * 64), max_bytes=32)

    def test_oversized_receive_rejected_before_payload(self):
        a, b = self._pair()
        a.sendall(struct.pack("!I", 1 << 30))  # header only, no payload
        with pytest.raises(CacheError, match="exceeds"):
            _recv_frame(b, max_bytes=1 << 20)

    def test_truncated_frame_rejected(self):
        a, b = self._pair()
        payload = pickle.dumps(("ping",))
        a.sendall(struct.pack("!I", len(payload) + 10) + payload)
        a.close()
        with pytest.raises(CacheError, match="truncated"):
            _recv_frame(b)

    def test_undecodable_payload_rejected(self):
        a, b = self._pair()
        garbage = b"\x80\x05not a pickle at all"
        a.sendall(struct.pack("!I", len(garbage)) + garbage)
        with pytest.raises(CacheError, match="undecodable"):
            _recv_frame(b)

    def test_non_tuple_message_rejected(self):
        a, b = self._pair()
        payload = pickle.dumps(["not", "a", "tuple"])
        a.sendall(struct.pack("!I", len(payload)) + payload)
        with pytest.raises(CacheError, match="malformed"):
            _recv_frame(b)

    def test_silent_peer_times_out(self):
        a, b = self._pair()
        b.settimeout(0.2)
        started = time.monotonic()
        with pytest.raises(CacheError, match="timed out"):
            _recv_frame(b)
        assert time.monotonic() - started < 2.0  # bounded, no hang


class TestClientFaults:
    def test_unreachable_address(self, tmp_path):
        client = CacheClient(str(tmp_path / "nothing.sock"), timeout=0.5)
        with pytest.raises(CacheError, match="cannot reach"):
            client.ping()

    def test_silent_server_times_out(self, tmp_path):
        """A server that accepts but never replies must not hang the
        client past its timeout."""
        address = str(tmp_path / "mute.sock")
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(address)
        listener.listen(1)
        accepted = []
        thread = threading.Thread(
            target=lambda: accepted.append(listener.accept()[0]),
            daemon=True)
        thread.start()
        client = CacheClient(address, timeout=0.3)
        started = time.monotonic()
        with pytest.raises(CacheError, match="timed out"):
            client.get("density", ("k",))
        assert time.monotonic() - started < 3.0
        listener.close()

    def test_corrupt_reply_is_cache_error(self, tmp_path):
        """A 'server' speaking garbage produces CacheError, not a
        crash or a hang."""
        address = str(tmp_path / "garbage.sock")
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(address)
        listener.listen(1)

        def serve_garbage():
            conn, _ = listener.accept()
            _recv_frame(conn)  # swallow the request
            garbage = b"junk payload"
            conn.sendall(struct.pack("!I", len(garbage)) + garbage)
            conn.close()

        thread = threading.Thread(target=serve_garbage, daemon=True)
        thread.start()
        client = CacheClient(address, timeout=2.0)
        with pytest.raises(CacheError):
            client.get("density", ("k",))
        listener.close()

    def test_oversized_frame_to_server_reports_and_closes(self, server):
        """The server rejects an oversized frame with an error reply;
        the next connection still works."""
        client = CacheClient(server.address, timeout=2.0)
        client.ping()
        # hand-roll a frame beyond the server's limit via a raw socket
        raw = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        raw.settimeout(2.0)
        raw.connect(server.address)
        raw.sendall(struct.pack("!I", server.max_frame_bytes + 1))
        reply = _recv_frame(raw)
        assert reply[0] == "error"
        assert "exceeds" in reply[1]
        raw.close()
        assert server.stats.bad_frames == 1
        client.ping()  # the server is still serving
        client.close()


# ----------------------------------------------------------------------
# server basics
# ----------------------------------------------------------------------
class TestServerBasics:
    def test_get_put_round_trip(self, server):
        with CacheClient(server.address) as client:
            client.ping()
            found, value, window = client.get("density", (("g",), "s", 1))
            assert (found, value) == (False, None) and window > 0
            assert client.put("density", (("g",), "s", 1), "value") == 1
            assert client.get("density", (("g",), "s", 1)) \
                == (True, "value", 0.0)
            # overwrite is not a new adoption
            assert client.put("density", (("g",), "s", 1), "value") == 0

    def test_get_many(self, server):
        with CacheClient(server.address) as client:
            entries = [("probes", (("g",), "s", i), i * i) for i in range(5)]
            assert client.put_many(entries) == 5
            keys = [key for _, key, _ in entries] + [(("g",), "s", 99)]
            found, windows = client.get_many("probes", keys)
            assert found == {key: value for _, key, value in entries}
            # the one absent key came back with a negative window
            assert set(windows) == {(("g",), "s", 99)}
            assert windows[(("g",), "s", 99)] > 0

    def test_unknown_layer_is_clean_error(self, server):
        with CacheClient(server.address) as client:
            with pytest.raises(CacheError, match="unknown cache layer"):
                client.put("hologram", ("k",), 1)
            client.ping()  # connection survives a dispatch error

    def test_unknown_op_is_clean_error(self, server):
        with CacheClient(server.address) as client:
            with pytest.raises(CacheError, match="unknown cache request"):
                client._request(("frobnicate", 1))
            client.ping()

    def test_malformed_request_shape_is_clean_error(self, server):
        with CacheClient(server.address) as client:
            with pytest.raises(CacheError):
                client._request(("get", "density"))  # missing the key
            client.ping()

    def test_stats_telemetry(self, server):
        with CacheClient(server.address) as client:
            client.put("evaluations", (("g",), "k"), 1)
            client.get("evaluations", (("g",), "k"))
            client.get("evaluations", (("g",), "absent"))
            stats = client.stats()
            assert stats["puts"] == 1 and stats["adopted"] == 1
            assert stats["gets"] == 2 and stats["hits"] == 1
            assert stats["hit_rate"] == 0.5
            assert stats["entries"] == 1
            assert stats["layer_sizes"]["evaluations"] == 1

    def test_server_side_lru_bounds_entries(self, tmp_path):
        with CacheServer(str(tmp_path / "small.sock"),
                         layer_capacities={"probes": 4}) as srv:
            with CacheClient(srv.address) as client:
                for i in range(20):
                    client.put("probes", (("g",), "s", i), i)
                stats = client.stats()
                assert stats["layer_sizes"]["probes"] == 4
                assert stats["evictions"] == 16
                # the newest entries survived
                found, _windows = client.get_many(
                    "probes", [(("g",), "s", i) for i in range(20)])
                assert sorted(found.values()) == [16, 17, 18, 19]

    def test_remote_shutdown(self, tmp_path):
        srv = CacheServer(str(tmp_path / "down.sock")).start()
        client = CacheClient(srv.address)
        client.shutdown()
        client.close()
        deadline = time.monotonic() + 5.0
        while os.path.exists(srv.address):
            assert time.monotonic() < deadline, "server did not stop"
            time.sleep(0.05)

    def test_write_behind_flush(self, tmp_path):
        from repro.core import cache_store

        path = str(tmp_path / "snap.bin")
        with CacheServer(str(tmp_path / "f.sock"), snapshot_path=path,
                         flush_interval=3600.0) as srv:
            with CacheClient(srv.address) as client:
                client.put("evaluations", (("g",), "k"), 42)
                assert client.flush() == path
                # nothing new: the next flush is a no-op
                assert client.flush() is None
        snapshot = cache_store.load(path)
        assert ((("g",), "k"), 42) in snapshot.layers["evaluations"]


# ----------------------------------------------------------------------
# engine attachment: transparency + fallback
# ----------------------------------------------------------------------
class TestEngineAttachment:
    def test_two_engines_share_live(self, server, lib):
        off = EvaluationEngine(cache=False)
        reference = design_fingerprint(find_design(diffeq(), lib, 6, 11,
                                                   engine=off))
        first = EvaluationEngine()
        assert attach_engine(first, server.address)
        warm = find_design(diffeq(), lib, 6, 11, engine=first)
        detach_engine(first)
        assert design_fingerprint(warm) == reference
        assert server.entry_count() > 0

        second = EvaluationEngine()
        assert attach_engine(second, server.address)
        shared = find_design(diffeq(), lib, 6, 11, engine=second)
        detach_engine(second)
        assert design_fingerprint(shared) == reference
        assert second.stats.remote_hits > 0, \
            "the second engine never used the first engine's results"

    def test_attach_to_dead_address_is_false(self, tmp_path):
        engine = EvaluationEngine()
        assert not attach_engine(engine, str(tmp_path / "gone.sock"))
        assert engine.backend is None

    def test_attach_refuses_cache_disabled_engine(self, server):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="cache-disabled"):
            attach_engine(EvaluationEngine(cache=False), server.address)

    def test_detach_flushes_buffered_puts(self, server, lib):
        engine = EvaluationEngine()
        assert attach_engine(engine, server.address,
                             batch_size=10_000)  # nothing auto-flushes
        find_design(diffeq(), lib, 6, 11, engine=engine)
        mid_count = server.entry_count()
        detach_engine(engine)
        assert server.entry_count() > mid_count, \
            "detach did not ship the write-behind buffer"

    def test_server_killed_mid_run_falls_back(self, tmp_path, lib):
        """Satellite: kill the server between evaluations — the engine
        flips to local-only and finishes with engine-off-identical
        results, flagging the fallback in its stats."""
        off = EvaluationEngine(cache=False)
        expected = [design_fingerprint(find_design(fir16(), lib, 10, 9,
                                                   engine=off)),
                    design_fingerprint(find_design(diffeq(), lib, 6, 11,
                                                   engine=off))]
        srv = CacheServer(str(tmp_path / "dying.sock")).start()
        engine = EvaluationEngine()
        assert attach_engine(engine, srv.address, timeout=2.0)
        first = find_design(fir16(), lib, 10, 9, engine=engine)
        srv.stop()  # the socket vanishes under the live client
        second = find_design(diffeq(), lib, 6, 11, engine=engine)
        detach_engine(engine)
        assert [design_fingerprint(first),
                design_fingerprint(second)] == expected
        assert engine.stats.remote_fallbacks == 1
        # once fallen back, the backend stays silent (no reconnects)
        assert engine.backend is None

    def test_forked_backend_never_touches_the_inherited_socket(
            self, server, monkeypatch):
        """A backend inherited across fork() shares the parent's
        connection fd; writing on it would interleave frames with the
        parent's requests.  Simulated child (different pid): the
        backend must go silent — no flush, no fallback accounting."""
        engine = EvaluationEngine()
        assert attach_engine(engine, server.address,
                             batch_size=10_000)
        backend = engine.backend
        backend.store("evaluations", (("g",), "fork"), 1)  # buffered
        assert backend._pending
        puts_before = server.stats.puts
        monkeypatch.setattr("repro.core.engine.os.getpid",
                            lambda: backend._owner_pid + 1)
        backend.flush()
        assert not backend.alive
        assert backend._pending == []
        assert server.stats.puts == puts_before, \
            "the 'child' wrote on the inherited socket"
        assert engine.stats.remote_fallbacks == 0, \
            "fork inheritance is not a server failure"
        monkeypatch.undo()
        detach_engine(engine)

    def test_sweep_killed_server_mid_flight(self, tmp_path, lib):
        """Satellite: the server dies *while* a workers=2 live sweep is
        running; every point still matches the serial engine-on sweep
        (which itself equals engine-off, pinned elsewhere)."""
        latencies, areas = [10, 11], [8, 9]
        serial = point_fingerprints(sweep_bounds(
            fir16(), lib, latencies, areas, engine=EvaluationEngine()))
        srv = CacheServer(str(tmp_path / "vanish.sock")).start()
        killer = threading.Timer(0.3, srv.stop)
        killer.start()
        try:
            points = sweep_bounds(fir16(), lib, latencies, areas,
                                  workers=2, engine=EvaluationEngine(),
                                  cache_server=srv.address)
        finally:
            killer.cancel()
            srv.stop()
        assert point_fingerprints(points) == serial


# ----------------------------------------------------------------------
# live sweeps: equivalence + concurrency
# ----------------------------------------------------------------------
def _hammer(address: str, worker_id: int, rounds: int, span: int,
            failures) -> None:
    """One stress process: interleave overlapping puts and gets."""
    try:
        client = CacheClient(address, timeout=10.0)
        for round_no in range(rounds):
            for i in range(span):
                # every worker writes the same key space (overlapping
                # allocations); values are derived from the key alone,
                # as engine memos are, so last-write-wins is benign
                key = (("graph", i % span), "sig", round_no)
                client.put("evaluations", key, ("value", i % span, round_no))
            found, _windows = client.get_many(
                "evaluations",
                [(("graph", i), "sig", round_no) for i in range(span)])
            for key, value in found.items():
                expected = ("value", key[0][1], round_no)
                if value != expected:
                    failures.put((worker_id, key, value, expected))
        client.close()
    except Exception as exc:  # pragma: no cover - failure reporting
        failures.put((worker_id, "exception", repr(exc)))


class TestConcurrentClients:
    def test_stress_no_lost_updates_no_deadlock(self, server):
        """Satellite: N processes hammer overlapping get/put traffic;
        every update must land (no lost updates), every process must
        finish (no deadlock), and values must never interleave."""
        n_workers, rounds, span = 4, 10, 25
        failures = multiprocessing.Queue()
        processes = [
            multiprocessing.Process(
                target=_hammer,
                args=(server.address, worker_id, rounds, span, failures))
            for worker_id in range(n_workers)
        ]
        for process in processes:
            process.start()
        for process in processes:
            process.join(timeout=60.0)
            assert not process.is_alive(), "stress worker deadlocked"
            assert process.exitcode == 0
        assert failures.empty(), failures.get()
        stats_entries = server.entry_count()
        assert stats_entries == rounds * span, \
            f"lost updates: {rounds * span - stats_entries} entries missing"
        with CacheClient(server.address) as client:
            for round_no in range(rounds):
                found, _windows = client.get_many(
                    "evaluations",
                    [(("graph", i), "sig", round_no) for i in range(span)])
                assert len(found) == span
                for key, value in found.items():
                    assert value == ("value", key[0][1], round_no)

    def test_live_sweep_matches_engine_off(self, lib):
        """Acceptance: a workers=2 live sweep over a Table 2 subgrid is
        byte-identical to the engine-off serial sweep."""
        latencies, areas = [10, 11], [8, 9]
        off = point_fingerprints(sweep_bounds(
            fir16(), lib, latencies, areas,
            engine=EvaluationEngine(cache=False)))
        hub = EvaluationEngine()
        live = point_fingerprints(sweep_bounds(
            fir16(), lib, latencies, areas, workers=2,
            share_caches="live", engine=hub))
        assert live == off
        # the ephemeral server's contents were merged back into the hub
        assert hub.cache_size() > 0

    def test_live_sweep_against_external_server(self, server, lib):
        """Workers attached to an externally owned server leave their
        results on it for the next run."""
        latencies, areas = [5, 6], [11]
        serial = point_fingerprints(sweep_bounds(
            diffeq(), lib, latencies, areas, engine=EvaluationEngine()))
        points = sweep_bounds(diffeq(), lib, latencies, areas, workers=2,
                              engine=EvaluationEngine(),
                              cache_server=server.address)
        assert point_fingerprints(points) == serial
        assert server.entry_count() > 0
        assert server.stats.adopted > 0


# ----------------------------------------------------------------------
# negative-result TTL markers
# ----------------------------------------------------------------------
class _CountingClient:
    """Duck-typed CacheClient double: counts round trips, serves a dict."""

    def __init__(self, store=None):
        self.store = store or {}
        self.gets = 0
        self.get_many_keys = 0
        self.puts = []

    def get(self, layer, key):
        self.gets += 1
        try:
            return True, self.store[(layer, key)]
        except KeyError:
            return False, None

    def get_many(self, layer, keys):
        self.get_many_keys += len(keys)
        return {key: self.store[(layer, key)] for key in keys
                if (layer, key) in self.store}

    def put_many(self, entries):
        self.puts.extend(entries)
        return len(entries)

    def close(self):
        pass


class TestNegativeResultMarkers:
    def test_repeat_miss_skips_the_round_trip(self):
        from repro.core.engine import EngineStats, RemoteCacheBackend

        client = _CountingClient()
        backend = RemoteCacheBackend(client, negative_ttl=60.0)
        backend.stats = EngineStats()
        assert backend.fetch("density", ("k",)) == (False, None)
        assert backend.fetch("density", ("k",)) == (False, None)
        assert backend.fetch("density", ("k",)) == (False, None)
        assert client.gets == 1  # only the first miss hit the wire
        assert backend.stats.remote_negative_hits == 2

    def test_marker_expires_after_ttl(self, monkeypatch):
        import time as time_module

        from repro.core.engine import RemoteCacheBackend

        client = _CountingClient()
        backend = RemoteCacheBackend(client, negative_ttl=0.01)
        backend.fetch("density", ("k",))
        time_module.sleep(0.02)
        backend.fetch("density", ("k",))
        assert client.gets == 2  # marker expired, re-asked

    def test_own_store_clears_the_marker(self):
        from repro.core.engine import RemoteCacheBackend

        client = _CountingClient()
        backend = RemoteCacheBackend(client, negative_ttl=60.0)
        backend.fetch("density", ("k",))
        backend.store("density", ("k",), "fresh")
        backend.flush()
        client.store[("density", ("k",))] = "fresh"
        found, value = backend.fetch("density", ("k",))
        assert (found, value) == (True, "fresh")
        assert client.gets == 2

    def test_batched_lookups_filter_marked_keys(self):
        from repro.core.engine import EngineStats, RemoteCacheBackend

        client = _CountingClient({("density", ("hit",)): "value"})
        backend = RemoteCacheBackend(client, negative_ttl=60.0)
        backend.stats = EngineStats()
        first = backend.fetch_many("density", [("hit",), ("miss",)])
        assert first == {("hit",): "value"}
        assert client.get_many_keys == 2
        # the miss is marked: the next batch only ships the unknown key
        second = backend.fetch_many("density", [("miss",), ("other",)])
        assert second == {}
        assert client.get_many_keys == 3
        assert backend.stats.remote_negative_hits == 1

    def test_zero_ttl_disables_markers(self):
        from repro.core.engine import RemoteCacheBackend

        client = _CountingClient()
        backend = RemoteCacheBackend(client, negative_ttl=0.0)
        backend.fetch("density", ("k",))
        backend.fetch("density", ("k",))
        assert client.gets == 2

    def test_negative_ttl_must_be_non_negative(self):
        from repro.core.engine import RemoteCacheBackend
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            RemoteCacheBackend(_CountingClient(), negative_ttl=-1.0)

    def test_marker_table_is_bounded(self):
        from repro.core.engine import RemoteCacheBackend

        client = _CountingClient()
        backend = RemoteCacheBackend(client, negative_ttl=60.0)
        limit = RemoteCacheBackend.MAX_NEGATIVE
        for index in range(limit + 10):
            backend.fetch("density", (index,))
        assert len(backend._negative) <= limit

    def test_cold_prefetch_tail_is_not_reasked(self, server, lib):
        """End to end: density-range keys the server missed once are
        not re-asked by the next evaluation's prefetch.

        An early-exiting scan (``stop_at_area``) prefetches the whole
        latency range but never computes (or stores) the tail, so only
        the absent markers stop a second scan from re-asking the
        server key by key — the diffeq live-pass regression.
        """
        from repro.core.cache_server import attach_engine

        engine = EvaluationEngine()
        assert attach_engine(engine, server.address)
        graph = diffeq()
        allocation = {op.op_id: lib.fastest_smallest(op.rtype)
                      for op in graph}
        bound = engine.min_latency(graph, allocation) + 4
        first = engine.evaluate(graph, allocation, bound,
                                stop_at_area=10 ** 6, scheduler="density")
        assert first is not None  # scan stopped at the first point
        gets_after_first = server.stats.gets
        second = engine.evaluate(graph, allocation, bound,
                                 scheduler="density")
        assert second is not None
        # the whole marked tail (4 density keys) answered locally
        assert engine.stats.remote_negative_hits == 4
        # remaining round trips are all first-time keys (the new memo
        # entry and the tail's schedule points), never re-asked misses
        assert server.stats.gets - gets_after_first <= 5


# ----------------------------------------------------------------------
# stale unix sockets (bind-time hygiene)
# ----------------------------------------------------------------------
class TestStaleSockets:
    def test_stale_socket_file_is_reclaimed(self, tmp_path):
        """Satellite regression: a socket file left behind by a dead
        server (SIGKILL skips the unlink) must not block the next
        bind."""
        address = str(tmp_path / "stale.sock")
        corpse = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        corpse.bind(address)
        corpse.close()  # closes the fd but leaves the file behind
        assert os.path.exists(address)
        with CacheServer(address) as srv:
            with CacheClient(srv.address) as client:
                client.ping()

    def test_live_server_socket_is_not_clobbered(self, server):
        """A *live* server's socket must never be unlinked out from
        under it by a second bind attempt."""
        with pytest.raises(CacheError, match="live server"):
            CacheServer(server.address).start()
        assert os.path.exists(server.address)
        with CacheClient(server.address) as client:
            client.ping()  # the incumbent is unharmed

    def test_non_socket_file_is_refused(self, tmp_path):
        """A regular file at the address is someone else's data —
        refuse to bind rather than delete it."""
        address = str(tmp_path / "notasocket.sock")
        with open(address, "w") as handle:
            handle.write("precious")
        with pytest.raises(CacheError, match="not a socket"):
            CacheServer(address).start()
        with open(address) as handle:
            assert handle.read() == "precious"


# ----------------------------------------------------------------------
# client fork safety
# ----------------------------------------------------------------------
def _forked_child(client, address, failures):
    """Runs in a fork()ed child holding the parent's connected client."""
    try:
        if client._sock is not None and client._owner_pid == os.getpid():
            failures.put(("child", "inherited socket not detected"))
        client.ping()  # must reconnect, not write on the parent's fd
        client.put("density", (("g",), "from-child", 1), "child-value")
        client.close()
    except Exception as exc:  # pragma: no cover - failure reporting
        failures.put(("child", repr(exc)))


class TestClientForkSafety:
    def test_forked_client_reconnects_instead_of_sharing_the_fd(
            self, server):
        """Satellite regression: a CacheClient carried across fork()
        must reconnect in the child; writing on the inherited fd would
        interleave the child's frames with the parent's stream."""
        context = multiprocessing.get_context("fork")
        failures = context.Queue()
        with CacheClient(server.address, timeout=10.0) as client:
            client.ping()  # connect in the parent first
            assert client._sock is not None
            process = context.Process(
                target=_forked_child,
                args=(client, server.address, failures))
            process.start()
            process.join(timeout=30.0)
            assert not process.is_alive() and process.exitcode == 0
            assert failures.empty(), failures.get()
            # the parent's connection survived the child's traffic
            client.ping()
            assert client.get("density", (("g",), "from-child", 1)) \
                == (True, "child-value", 0.0)
        assert server.stats.connections >= 2, \
            "the child reused the parent's connection"


# ----------------------------------------------------------------------
# ping hygiene (malformed replies from a scripted fake server)
# ----------------------------------------------------------------------
def _scripted_server(tmp_path, replies):
    """A fake unix 'server' answering each request from a script."""
    address = str(tmp_path / "scripted.sock")
    listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    listener.bind(address)
    listener.listen(1)

    def serve():
        conn, _ = listener.accept()
        conn.settimeout(5.0)
        for reply in replies:
            if _recv_frame(conn) is None:
                break
            _send_frame(conn, reply)
        conn.close()

    threading.Thread(target=serve, daemon=True).start()
    return address, listener


class TestPingHygiene:
    @pytest.mark.parametrize("reply", [
        ("ok", ("pong",)),        # arity regression: slipped the guard
        ("ok", "pong"),           # non-tuple reply
        ("ok", ("gnop", PROTOCOL_VERSION)),
        ("ok", (None, None)),
    ])
    def test_malformed_pong_is_clean_cache_error(self, tmp_path, reply):
        address, listener = _scripted_server(tmp_path, [reply])
        try:
            with CacheClient(address, timeout=2.0) as client:
                with pytest.raises(CacheError, match="malformed ping"):
                    client.ping()
        finally:
            listener.close()

    @pytest.mark.parametrize("version", [None, 0, PROTOCOL_VERSION + 5,
                                         "2"])
    def test_version_skew_is_protocol_error(self, tmp_path, version):
        address, listener = _scripted_server(
            tmp_path, [("ok", ("pong", version))])
        try:
            with CacheClient(address, timeout=2.0) as client:
                with pytest.raises(ProtocolError, match="protocol"):
                    client.ping()
        finally:
            listener.close()

    def test_malformed_reply_envelope_is_clean(self, tmp_path):
        address, listener = _scripted_server(tmp_path, [("ok",)])
        try:
            with CacheClient(address, timeout=2.0) as client:
                with pytest.raises(CacheError, match="malformed"):
                    client.ping()
        finally:
            listener.close()


# ----------------------------------------------------------------------
# TCP transport: handshake, auth, and the synthesize RPC
# ----------------------------------------------------------------------
TOKEN = "sesame-open"


@pytest.fixture()
def tcp_server():
    with CacheServer("tcp://127.0.0.1:0", auth_token=TOKEN) as srv:
        yield srv


class TestTCPTransport:
    """Hardening corner cases only: the happy-path op set over every
    (transport, encoding, auth) combination — round-trips, version
    skew, remote-vs-local job parity — now lives in the parametrized
    matrix in ``test_protocol_conformance.py``."""

    def test_tcp_requires_a_token_server_side(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="auth"):
            CacheServer("tcp://127.0.0.1:0")

    def test_wrong_token_is_clean_rejection(self, tcp_server):
        started = time.monotonic()
        with CacheClient(tcp_server.address, auth_token="wrong",
                         timeout=2.0) as client:
            with pytest.raises(ProtocolError, match="handshake"):
                client.ping()
        assert time.monotonic() - started < 5.0  # bounded, no hang
        assert tcp_server.stats.auth_failures == 1
        # no partial state: the failed peer stored nothing
        assert tcp_server.entry_count() == 0
        with CacheClient(tcp_server.address, auth_token=TOKEN) as client:
            client.ping()  # still serving

    def test_missing_token_is_clean_rejection(self, tcp_server):
        with CacheClient(tcp_server.address, timeout=2.0) as client:
            with pytest.raises(ProtocolError, match="handshake"):
                client.ping()
        assert tcp_server.stats.auth_failures == 1

    def test_pickle_frames_on_tcp_are_rejected(self, tcp_server):
        """No pickle ever crosses TCP: a raw pickle frame is refused
        before the handshake, and asking for the pickle encoding in
        the handshake is refused too."""
        _scheme, host, port = \
            cache_server.parse_address(tcp_server.address)
        raw = socket.create_connection((host, port), timeout=2.0)
        raw.settimeout(2.0)
        raw.sendall(struct.pack("!I", 10) + pickle.dumps(("ping",))[:10])
        reply = _recv_frame(raw, encoding="json")
        assert reply[0] == "error"
        raw.close()
        raw = socket.create_connection((host, port), timeout=2.0)
        raw.settimeout(2.0)
        _send_frame(raw, ("hello", PROTOCOL_VERSION, "pickle", TOKEN),
                    encoding="json")
        reply = _recv_frame(raw, encoding="json")
        assert reply[0] == "error" and "pickle" in reply[1]
        raw.close()
        with CacheClient(tcp_server.address, auth_token=TOKEN) as client:
            client.ping()  # still serving

    def test_client_refuses_pickle_encoding_on_tcp(self, tcp_server):
        with pytest.raises(ProtocolError, match="pickle"):
            CacheClient(tcp_server.address, encoding="pickle",
                        auth_token=TOKEN)

    def test_no_pickle_bytes_cross_a_tcp_session(self, tcp_server, lib,
                                                 monkeypatch):
        """Structural proof: disable the pickle codec process-wide and
        run a full TCP session — handshake, puts, gets, a synthesize
        job — nothing may reach for pickle on either side."""
        def poisoned(*_args, **_kwargs):
            raise AssertionError("pickle bytes on a TCP session")

        monkeypatch.setattr(wire, "_encode_pickle", poisoned)
        monkeypatch.setattr(wire, "_decode_pickle", poisoned)
        with CacheClient(tcp_server.address, auth_token=TOKEN) as client:
            client.ping()
            client.put("density", (("g",), "s", 1), ("v",))
            assert client.get("density", (("g",), "s", 1)) \
                == (True, ("v",), 0.0)
            result = client.synthesize(diffeq(), lib, 8, 20)
            assert result.area <= 20


class TestSynthesizeRPC:
    """Remote-vs-local parity for jobs (results, streaming,
    NoSolutionError) is pinned per transport/encoding/auth combo by
    ``test_protocol_conformance.py``; only server-internal behaviours
    stay here."""

    def test_jobs_warm_the_server_cache(self, tcp_server, lib):
        """A synthesize job executes on the server's shared layers, so
        an engine attached afterwards reuses the job's entries."""
        with CacheClient(tcp_server.address, auth_token=TOKEN) as client:
            client.synthesize(diffeq(), lib, 8, 20)
        assert tcp_server.entry_count() > 0
        engine = EvaluationEngine()
        assert attach_engine(engine, tcp_server.address, auth_token=TOKEN)
        find_design(diffeq(), lib, 8, 20, engine=engine)
        detach_engine(engine)
        assert engine.stats.remote_hits > 0, \
            "the attached engine never used the job's entries"

    def test_bad_job_shapes_are_clean_errors(self, tcp_server, lib):
        with CacheClient(tcp_server.address, auth_token=TOKEN) as client:
            with pytest.raises(CacheError, match="synthesize"):
                client._request(("synthesize", "not-a-graph"))
            client.ping()  # the connection survives

    def test_fail_open_to_local_compute(self, lib):
        """Acceptance: a dead server address means local compute with
        identical results — for jobs as well as cache lookups."""
        local = find_design(diffeq(), lib, 8, 20,
                            engine=EvaluationEngine(cache=False))
        result = synthesize_remote(
            diffeq(), lib, 8, 20, address="tcp://127.0.0.1:9",
            auth_token=TOKEN, timeout=0.5,
            engine=EvaluationEngine(cache=False))
        assert design_fingerprint(result) == design_fingerprint(local)
        graph = diffeq()
        allocations = [{op.op_id: lib.fastest(op.rtype) for op in graph}]
        evals = evaluate_batch_remote(
            graph, allocations, 8, address="tcp://127.0.0.1:9",
            auth_token=TOKEN, timeout=0.5)
        reference = EvaluationEngine(cache=False).evaluate_batch(
            graph, allocations, 8)
        assert [(e.latency, e.area) if e else None for e in evals] \
            == [(e.latency, e.area) if e else None for e in reference]

    def test_fail_open_preserves_no_solution(self, lib):
        with pytest.raises(NoSolutionError):
            synthesize_remote(diffeq(), lib, 1, 1,
                              address="tcp://127.0.0.1:9",
                              auth_token=TOKEN, timeout=0.5,
                              engine=EvaluationEngine(cache=False))


# ----------------------------------------------------------------------
# event-loop hardening: fd exhaustion, backpressure, stream drops
# ----------------------------------------------------------------------
class TestAcceptHardening:
    def test_fd_exhaustion_pauses_accept_but_keeps_serving(self, tmp_path):
        """Satellite regression: ``accept()`` raising EMFILE used to be
        swallowed with a bare ``return``, leaving the listener readable
        and the event loop spinning hot (and, on some kernels, the
        pending connection wedged forever).  Now the listener pauses
        briefly, existing connections keep being served, and accepting
        resumes once descriptors free up."""
        resource = pytest.importorskip("resource")
        soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
        address = str(tmp_path / "fd.sock")
        server = cache_server.CacheServer(address).start()
        reserve = [os.open(os.devnull, os.O_RDONLY) for _ in range(8)]
        hogs = []
        thread = None
        try:
            with CacheClient(address, timeout=15.0) as steady:
                steady.put("density", (("g",), "k", 1), "v")
                resource.setrlimit(resource.RLIMIT_NOFILE, (256, hard))
                try:
                    while True:
                        hogs.append(os.open(os.devnull, os.O_RDONLY))
                except OSError:
                    pass
                assert hogs, "could not exhaust the fd table"
                # one descriptor back: enough for the late client's
                # socket, NOT enough for the server's accept()ed end
                os.close(reserve.pop())
                outcome = {}

                def late_client():
                    try:
                        with CacheClient(address, timeout=15.0) as late:
                            outcome["get"] = late.get(
                                "density", (("g",), "k", 1))
                    except Exception as exc:  # pragma: no cover
                        outcome["error"] = repr(exc)

                thread = threading.Thread(target=late_client)
                thread.start()
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline \
                        and not server.stats.accept_errors:
                    time.sleep(0.01)
                assert server.stats.accept_errors >= 1
                # the pre-existing connection is served while paused
                assert steady.get("density", (("g",), "k", 1))[:2] \
                    == (True, "v")
                for fd in hogs:
                    os.close(fd)
                hogs = []
                thread.join(timeout=15.0)
                assert not thread.is_alive()
                assert "error" not in outcome, outcome
                assert outcome["get"][:2] == (True, "v")
        finally:
            for fd in hogs:
                os.close(fd)
            for fd in reserve:
                os.close(fd)
            resource.setrlimit(resource.RLIMIT_NOFILE, (soft, hard))
            if thread is not None and thread.is_alive():
                thread.join(timeout=15.0)
            server.stop()


class TestBackpressure:
    def test_stalled_reader_is_disconnected_cleanly(self, tmp_path):
        """A client that pipelines requests without draining replies
        must not buffer the server into the ground: past the outbuf
        cap the connection gets one clean error frame and is closed —
        and the server keeps serving everyone else."""
        address = str(tmp_path / "bp.sock")
        with cache_server.CacheServer(
                address, max_outbuf_bytes=64 * 1024) as server:
            big = "x" * 16384
            key = (("g",), "big", 1)
            server.seed({"density": [(key, big)]})
            sock = socket.socket(socket.AF_UNIX)
            sock.connect(address)
            sock.settimeout(30.0)
            try:
                request = wire.encode(("get", "density", key), "pickle")
                framed = struct.pack("!I", len(request)) + request
                sock.sendall(framed * 400)  # ~6.5 MB of replies due
                # now drain: ok replies, then the condemnation frame,
                # then EOF — never a hang, never a killed server
                saw_backpressure = False
                while True:
                    reply = _recv_frame(sock)
                    if reply is None:
                        break
                    if reply[0] == "error":
                        assert "backpressure" in reply[1]
                        saw_backpressure = True
                assert saw_backpressure
            finally:
                sock.close()
            assert server.stats.backpressure_disconnects == 1
            with CacheClient(address, timeout=10.0) as other:
                other.ping()
                assert other.get("density", key)[:2] == (True, big)

    def test_design_stream_frames_dropped_when_not_draining(self,
                                                            tmp_path):
        """White-box: optional ``design`` stream frames are shed once a
        connection's outbuf backs up, but the job's final reply always
        goes out."""
        server = cache_server.CacheServer(
            str(tmp_path / "unused.sock"), stream_outbuf_bytes=1024)
        left, right = socket.socketpair()
        try:
            conn = cache_server._Connection(
                left, "unix", time.monotonic())
            conn.handshaken = True
            conn.codec = "pickle"
            conn.busy = True
            backlog = b"\0" * 4096  # a stalled reader's buffered bytes
            conn.outbuf += backlog
            server._io_queue.append(
                ("frame", conn, ("design", "streamed")))
            server._io_queue.append(("done", conn, ("ok", "final")))
            server._drain_io_queue()
            assert server.stats.designs_dropped == 1
            assert conn.busy is False
            right.settimeout(5.0)
            received = bytearray()
            while len(received) < len(backlog):
                received += right.recv(1 << 16)
            assert bytes(received[:len(backlog)]) == backlog
            del received[:len(backlog)]
            while len(received) < struct.calcsize("!I"):
                received += right.recv(1 << 16)
            (length,) = struct.unpack(
                "!I", bytes(received[:struct.calcsize("!I")]))
            while len(received) < struct.calcsize("!I") + length:
                received += right.recv(1 << 16)
            payload = bytes(received[struct.calcsize("!I"):])
            assert wire.decode(payload, "pickle") == ("ok", "final")
            # nothing else was queued: the design frame is gone
            assert not conn.outbuf
        finally:
            left.close()
            right.close()
