"""Property-based tests for the pipelining and register subsystems."""

from hypothesis import given, settings, strategies as st

from repro.dfg import random_dag, unit_delays
from repro.errors import SchedulingError
from repro.hls import (
    allocate_registers,
    density_schedule,
    min_initiation_interval,
    min_register_bound,
    modulo_bind,
    modulo_list_schedule,
    pipelined_realization,
    value_lifetimes,
)
from repro.library import paper_library

graph_params = st.tuples(st.integers(2, 25), st.integers(0, 3_000))


def build(params):
    size, seed = params
    return random_dag(size, seed=seed)


def fast_allocation(graph):
    library = paper_library()
    return {op.op_id: library.fastest_smallest(op.rtype) for op in graph}


class TestModuloProperties:
    @given(graph_params, st.integers(2, 10))
    @settings(max_examples=40, deadline=None)
    def test_realization_is_modulo_disjoint(self, params, ii):
        graph = build(params)
        allocation = fast_allocation(graph)
        schedule, binding = pipelined_realization(graph, allocation, ii)
        schedule.validate()
        # re-check the invariant from first principles
        for inst in binding.instances:
            used = set()
            for op_id in inst.ops:
                start = schedule.start(op_id)
                slots = {(start + k) % ii
                         for k in range(schedule.delays[op_id])}
                assert not (slots & used)
                used |= slots

    @given(graph_params, st.integers(1, 4), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_min_ii_is_a_true_lower_bound(self, params, adders, mults):
        graph = build(params)
        allocation = fast_allocation(graph)
        counts = {"adder2": adders, "mult2": mults}
        floor = min_initiation_interval(graph, allocation, counts)
        if floor > 1:
            try:
                schedule = modulo_list_schedule(graph, allocation, counts,
                                                floor - 1)
            except SchedulingError:
                return  # correctly rejected
            # if it returned, the invariant itself must be violated —
            # which modulo_bind would catch; so this must not happen
            raise AssertionError(
                f"schedule below min II accepted: {schedule}")

    @given(graph_params, st.integers(2, 8))
    @settings(max_examples=30, deadline=None)
    def test_pipelined_area_at_least_sequential_lower_bound(self, params,
                                                            ii):
        import math

        graph = build(params)
        allocation = fast_allocation(graph)
        _, binding = pipelined_realization(graph, allocation, ii)
        busy = {}
        for op in graph:
            version = allocation[op.op_id]
            busy.setdefault(version.name, [0, version.area])[0] += \
                version.delay
        expected = sum(max(1, math.ceil(cycles / ii)) * area
                       for cycles, area in busy.values())
        assert binding.area >= expected


class TestRegisterProperties:
    @given(graph_params, st.integers(0, 5))
    @settings(max_examples=40, deadline=None)
    def test_left_edge_is_optimal(self, params, slack):
        graph = build(params)
        delays = unit_delays(graph)
        from repro.hls import asap_latency

        schedule = density_schedule(graph, delays,
                                    asap_latency(graph, delays) + slack)
        allocation = allocate_registers(schedule)
        assert allocation.count == min_register_bound(schedule)

    @given(graph_params)
    @settings(max_examples=40, deadline=None)
    def test_every_value_has_a_register(self, params):
        graph = build(params)
        schedule = density_schedule(graph, unit_delays(graph))
        allocation = allocate_registers(schedule)
        assert set(allocation.value_to_register) == set(graph.op_ids())

    @given(graph_params)
    @settings(max_examples=40, deadline=None)
    def test_no_register_holds_overlapping_lifetimes(self, params):
        graph = build(params)
        schedule = density_schedule(graph, unit_delays(graph))
        allocation = allocate_registers(schedule)
        lifetimes = {lt.op_id: lt for lt in value_lifetimes(schedule)}
        for values in allocation.registers:
            spans = sorted((lifetimes[v].birth, lifetimes[v].death)
                           for v in values)
            for (_, death), (birth, _) in zip(spans, spans[1:]):
                assert birth >= death
