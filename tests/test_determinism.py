"""Determinism of parallel sweeps under cache pre-warm/merge.

``sweep_bounds`` must produce byte-identical points regardless of the
worker count and of whether cross-process cache sharing (pre-warm from
a parent snapshot, merge-back on join) is active — on all three paper
benchmarks.  This is the contract that lets ``--workers N`` and
``--cache-dir`` be pure wall-clock knobs: they may never become result
knobs.
"""

import pytest

from repro.bench import diffeq, ewf, fir16
from repro.core import EvaluationEngine, sweep_bounds
from repro.library import paper_library

#: benchmark → (latency bounds, area bounds) — small grids chosen so
#: each contains both feasible and tight points
GRIDS = {
    fir16: ([10, 11], [8, 9]),
    ewf: ([14, 16], [9]),
    diffeq: ([5, 6], [11]),
}


@pytest.fixture(scope="module")
def lib():
    return paper_library()


def point_fingerprint(point):
    if point.result is None:
        return (point.latency_bound, point.area_bound, None)
    result = point.result
    return (point.latency_bound, point.area_bound, result.area,
            result.latency, result.reliability,
            dict(result.schedule.starts),
            dict(result.binding.op_to_instance),
            {op: v.name for op, v in result.allocation.items()})


@pytest.fixture(scope="module")
def serial_points(lib):
    return {
        make: [point_fingerprint(p) for p in sweep_bounds(
            make(), lib, *GRIDS[make], engine=EvaluationEngine())]
        for make in GRIDS
    }


@pytest.mark.parametrize("make", list(GRIDS),
                         ids=lambda make: make.__name__)
class TestWorkerDeterminism:
    def test_workers4_unshared_matches_serial(self, lib, make,
                                              serial_points):
        points = sweep_bounds(make(), lib, *GRIDS[make], workers=4,
                              share_caches=False)
        assert [point_fingerprint(p) for p in points] == \
            serial_points[make]

    def test_workers4_with_prewarm_and_merge_matches_serial(
            self, lib, make, serial_points):
        hub = EvaluationEngine()
        # run twice through the same hub: pass 1 runs cold workers and
        # merges their caches back; pass 2 pre-warms the workers from
        # the merged snapshot — both must equal the serial sweep
        for expectation in ("cold+merge", "pre-warmed"):
            points = sweep_bounds(make(), lib, *GRIDS[make], workers=4,
                                  engine=hub)
            assert [point_fingerprint(p) for p in points] == \
                serial_points[make], expectation
        assert hub.cache_size() > 0  # the merge-back actually happened

    def test_workers1_falls_back_to_serial_path(self, lib, make,
                                                serial_points):
        points = sweep_bounds(make(), lib, *GRIDS[make], workers=1,
                              engine=EvaluationEngine())
        assert [point_fingerprint(p) for p in points] == \
            serial_points[make]
