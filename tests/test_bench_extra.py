"""Tests for the extra benchmarks (EWF-34 and AR lattice)."""

import pytest

from repro.bench import ar_lattice, ewf34, get_benchmark
from repro.dfg import depth
from repro.errors import NoSolutionError
from repro.library import paper_library
from repro.core import baseline_design, find_design


class TestEwf34:
    def test_canonical_counts(self):
        g = ewf34()
        assert len(g) == 34
        assert g.counts_by_rtype() == {"add": 26, "mul": 8}

    def test_canonical_depth(self):
        assert depth(ewf34()) == 14

    def test_single_sink(self):
        assert len(ewf34().sinks()) == 1

    def test_synthesizable_at_textbook_bounds(self):
        # the classic EWF schedules in 16-19 steps with 2-3 adders
        lib = paper_library()
        result = find_design(ewf34(), lib, 16, 12)
        assert result.meets_bounds()
        baseline = baseline_design(ewf34(), lib, 16, 12)
        assert result.reliability > baseline.reliability

    def test_minimum_latency_infeasible_below_depth(self):
        with pytest.raises(NoSolutionError):
            find_design(ewf34(), paper_library(), 13, 40)


class TestArLattice:
    def test_counts(self):
        g = ar_lattice()
        assert len(g) == 28
        assert g.counts_by_rtype() == {"mul": 16, "add": 12}

    def test_depth(self):
        assert depth(ar_lattice()) == 11

    def test_synthesis_end_to_end(self):
        lib = paper_library()
        result = find_design(ar_lattice(), lib, 14, 14)
        result.schedule.validate()
        result.binding.validate()
        assert result.meets_bounds()

    def test_mult_heavy_profile_prefers_mult1_at_loose_latency(self):
        # with latency slack, the search moves multiplications onto
        # the reliable 2-cycle multiplier
        lib = paper_library()
        tight = find_design(ar_lattice(), lib, 12, 14)
        loose = find_design(ar_lattice(), lib, 24, 14)
        assert loose.reliability > tight.reliability
        assert loose.version_histogram().get("mult1", 0) >= \
            tight.version_histogram().get("mult1", 0)


class TestRegistryIntegration:
    @pytest.mark.parametrize("name,ops", [("ewf34", 34), ("ar", 28),
                                          ("AR28", 28)])
    def test_lookup(self, name, ops):
        assert len(get_benchmark(name)) == ops
