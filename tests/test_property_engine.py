"""Property-based equivalence tests for the engine cache layers.

Hypothesis drives random DFGs, random resource libraries (deliberately
including same-delay version pairs, which exercise the delays-keyed
schedule sharing and the incremental re-binding path), and random
allocation sequences through four engines that must be observationally
identical:

* **off** — caching disabled, the reference algorithms;
* **cold** — a fresh engine per request;
* **warm** — one engine serving every request (intra-run reuse);
* **reloaded** — a fresh engine pre-warmed from a snapshot of *warm*
  round-tripped through the serialized wire format;
* **compacted** — like *reloaded*, but through
  :func:`repro.core.cache_store.compact_snapshot` (bound-dominance
  pruning, and again under an aggressive size cap) — compaction may
  only ever cost hit rate, never change results.

A further property pins the incremental re-binder against the full
left-edge bind on single-operation allocation deltas.
"""

from hypothesis import given, settings, strategies as st

from repro.bench import diffeq
from repro.core import (
    EvaluationEngine,
    cache_store,
    find_design,
    merge_snapshot,
    snapshot_engine,
)
from repro.dfg import random_dag
from repro.errors import NoSolutionError
from repro.hls.binding import left_edge_bind, rebind_versions
from repro.library import ResourceLibrary, ResourceVersion, paper_library


def random_library(rng_values) -> ResourceLibrary:
    """A 2-type library whose version parameters come from hypothesis.

    Every type gets one pair of versions sharing a delay (the
    incremental-rebind trigger) plus one distinct-delay version.
    """
    versions = []
    for rtype, prefix in (("add", "a"), ("mul", "m")):
        shared_delay, extra_delay, areas, rels = rng_values[rtype]
        versions.extend([
            ResourceVersion(rtype, f"{prefix}0", area=areas[0],
                            delay=shared_delay, reliability=rels[0]),
            ResourceVersion(rtype, f"{prefix}1", area=areas[1],
                            delay=shared_delay, reliability=rels[1]),
            ResourceVersion(rtype, f"{prefix}2", area=areas[2],
                            delay=extra_delay, reliability=rels[2]),
        ])
    return ResourceLibrary(versions)


library_params = st.fixed_dictionaries({
    rtype: st.tuples(
        st.integers(min_value=1, max_value=3),       # shared delay
        st.integers(min_value=1, max_value=4),       # extra delay
        st.tuples(*[st.integers(min_value=1, max_value=5)] * 3),  # areas
        st.tuples(*[st.floats(min_value=0.9, max_value=0.999,
                              allow_nan=False)] * 3),  # reliabilities
    )
    for rtype in ("add", "mul")
})

graph_params = st.tuples(
    st.integers(min_value=2, max_value=10),      # size
    st.integers(min_value=0, max_value=10_000),  # seed
    st.floats(min_value=0.1, max_value=0.9),     # edge probability
)


@st.composite
def evaluation_case(draw):
    """A graph, a library, and a handful of allocation requests."""
    size, seed, prob = draw(graph_params)
    graph = random_dag(size, seed=seed, edge_prob=prob)
    library = random_library(draw(library_params))
    choices = {rtype: library.versions_of(rtype)
               for rtype in ("add", "mul")}
    requests = []
    n_requests = draw(st.integers(min_value=2, max_value=5))
    for _ in range(n_requests):
        allocation = {
            op.op_id: choices[op.rtype][
                draw(st.integers(min_value=0, max_value=2))]
            for op in graph
        }
        slack = draw(st.integers(min_value=0, max_value=6))
        requests.append((allocation, slack))
    return graph, library, requests


def evaluation_fingerprint(evaluation):
    if evaluation is None:
        return None
    return (evaluation.latency, evaluation.area,
            dict(evaluation.schedule.starts),
            dict(evaluation.binding.op_to_instance),
            [(i.name, i.version) for i in evaluation.binding.instances])


class TestEvaluateEquivalence:
    @given(evaluation_case())
    @settings(max_examples=40, deadline=None)
    def test_cold_warm_reloaded_off_agree(self, case):
        graph, library, requests = case
        off = EvaluationEngine(cache=False)
        warm = EvaluationEngine()
        # bounds are derived from each allocation's critical path so a
        # good share of the requests are feasible
        resolved = []
        for allocation, slack in requests:
            bound = off.min_latency(graph, allocation) + slack
            resolved.append((allocation, bound))

        expected = [evaluation_fingerprint(
            off.evaluate(graph, allocation, bound))
            for allocation, bound in resolved]

        for index, (allocation, bound) in enumerate(resolved):
            cold = EvaluationEngine()
            assert evaluation_fingerprint(
                cold.evaluate(graph, allocation, bound)) == expected[index]
            # ask warm twice: miss then memo hit must both agree
            assert evaluation_fingerprint(
                warm.evaluate(graph, allocation, bound)) == expected[index]
            assert evaluation_fingerprint(
                warm.evaluate(graph, allocation, bound)) == expected[index]

        snapshot = cache_store.loads(
            cache_store.dumps(snapshot_engine(warm)))
        reloaded = EvaluationEngine()
        merge_snapshot(reloaded, snapshot)
        for index, (allocation, bound) in enumerate(resolved):
            assert evaluation_fingerprint(
                reloaded.evaluate(graph, allocation, bound)) == \
                expected[index]

        # cold ≡ warm ≡ compacted: dominance pruning (and, separately,
        # a size cap tight enough to actually drop entries) must never
        # change what a pre-warmed engine answers
        for max_bytes in (None, 2048):
            compacted_snapshot, _stats = cache_store.compact_snapshot(
                snapshot, max_bytes=max_bytes)
            compacted = EvaluationEngine()
            merge_snapshot(compacted, compacted_snapshot)
            for index, (allocation, bound) in enumerate(resolved):
                assert evaluation_fingerprint(
                    compacted.evaluate(graph, allocation, bound)) == \
                    expected[index]

    @given(evaluation_case())
    @settings(max_examples=15, deadline=None)
    def test_find_design_cached_equals_reference(self, case):
        """End-to-end: the full search (memo layers, schedule sharing,
        incremental re-binding, dominance pruning) matches the
        uncached reference on random instances."""
        graph, library, requests = case
        allocation, slack = requests[0]
        off = EvaluationEngine(cache=False)
        latency_bound = off.min_latency(graph, allocation) + slack
        area_bound = sum(v.area for v in allocation.values())

        def run(engine):
            try:
                result = find_design(graph, library, latency_bound,
                                     area_bound, engine=engine)
            except NoSolutionError:
                return None
            return (result.area, result.latency, result.reliability,
                    dict(result.schedule.starts),
                    dict(result.binding.op_to_instance))

        assert run(EvaluationEngine()) == run(off)

    @given(evaluation_case())
    @settings(max_examples=15, deadline=None)
    def test_snapshot_survives_graph_rebuild(self, case):
        """Content addressing: the reloaded engine must hit for a
        *rebuilt* graph object, and still answer like the reference."""
        graph, library, requests = case
        allocation, slack = requests[0]
        off = EvaluationEngine(cache=False)
        bound = off.min_latency(graph, allocation) + slack
        expected = evaluation_fingerprint(
            off.evaluate(graph, allocation, bound))

        donor = EvaluationEngine()
        donor.evaluate(graph, allocation, bound)
        reloaded = EvaluationEngine()
        merge_snapshot(reloaded, cache_store.loads(
            cache_store.dumps(snapshot_engine(donor))))

        # a distinct object with identical content: round-trip the
        # graph through its text serialization
        from repro.dfg.textio import dumps as graph_dumps, loads as \
            graph_loads
        rebuilt = graph_loads(graph_dumps(graph))
        assert rebuilt is not graph
        rebuilt_allocation = {op: allocation[op] for op in allocation}
        assert evaluation_fingerprint(
            reloaded.evaluate(rebuilt, rebuilt_allocation, bound)) == \
            expected


class TestIncrementalRebind:
    @given(evaluation_case(),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_rebind_matches_full_bind_on_single_op_delta(self, case,
                                                         pick_seed):
        """rebind_versions ≡ left_edge_bind for every one-op change
        that keeps the schedule valid (same delay)."""
        import random

        graph, library, requests = case
        allocation, slack = requests[0]
        off = EvaluationEngine(cache=False)
        bound = off.min_latency(graph, allocation) + slack
        evaluation = off.evaluate(graph, allocation, bound,
                                  scheduler="density")
        if evaluation is None:
            return
        schedule = evaluation.schedule
        base = left_edge_bind(schedule, allocation)

        rng = random.Random(pick_seed)
        op = rng.choice(list(schedule.graph))
        old = allocation[op.op_id]
        same_delay = [v for v in library.versions_of(op.rtype)
                      if v.delay == old.delay and v != old]
        if not same_delay:
            return
        changed = dict(allocation)
        changed[op.op_id] = rng.choice(same_delay)

        incremental = rebind_versions(
            schedule, changed, base,
            {old.name, changed[op.op_id].name})
        full = left_edge_bind(schedule, changed)
        assert incremental.op_to_instance == full.op_to_instance
        assert [(i.name, i.version, i.ops) for i in incremental.instances] \
            == [(i.name, i.version, i.ops) for i in full.instances]
        assert incremental.area == full.area

    def test_engine_uses_incremental_rebinding(self):
        """The paper library has no same-delay version pairs, so build
        one explicitly and check the engine actually takes the
        incremental path (not just that the path is correct)."""
        library = ResourceLibrary([
            ResourceVersion("add", "slowrel", area=2, delay=2,
                            reliability=0.999),
            ResourceVersion("add", "slowcheap", area=1, delay=2,
                            reliability=0.99),
            ResourceVersion("mul", "m", area=4, delay=2,
                            reliability=0.99),
        ])
        graph = random_dag(8, seed=3, edge_prob=0.4)
        base = {op.op_id: library.version(
            "slowrel" if op.rtype == "add" else "m") for op in graph}
        adders = [op.op_id for op in graph if op.rtype == "add"]
        if not adders:  # seed-dependent guard; seed=3 does contain adds
            return
        engine = EvaluationEngine(scheduler="density")
        off = EvaluationEngine(cache=False, scheduler="density")
        bound = engine.min_latency(graph, base) + 2
        engine.evaluate(graph, base, bound)
        delta = dict(base)
        delta[adders[0]] = library.version("slowcheap")
        warm = engine.evaluate(graph, delta, bound)
        cold = off.evaluate(graph, delta, bound)
        assert engine.stats.incremental_rebinds > 0
        assert engine.stats.schedule_reuses > 0
        assert evaluation_fingerprint(warm) == evaluation_fingerprint(cold)


class TestDefaultEnginePathway:
    def test_benchmark_snapshot_round_trip_equivalence(self):
        """The paper benchmark through the full snapshot pathway."""
        lib = paper_library()
        warm = EvaluationEngine()
        first = find_design(diffeq(), lib, 6, 11, engine=warm)
        reloaded = EvaluationEngine()
        merge_snapshot(reloaded, cache_store.loads(
            cache_store.dumps(snapshot_engine(warm))))
        second = find_design(diffeq(), lib, 6, 11, engine=reloaded)
        assert reloaded.stats.hits > 0
        assert second.area == first.area
        assert second.reliability == first.reliability
        assert second.schedule.starts == first.schedule.starts
        assert second.binding.op_to_instance == \
            first.binding.op_to_instance
