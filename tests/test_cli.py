"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.dfg import DFGBuilder
from repro.dfg import textio
from repro.library import io as library_io
from repro.library import paper_library


class TestSynth:
    def test_ours(self, capsys):
        assert main(["synth", "diffeq", "-l", "6", "-a", "11"]) == 0
        out = capsys.readouterr().out
        assert "reliability" in out
        assert "find_design" in out

    def test_baseline(self, capsys):
        assert main(["synth", "fir", "-l", "10", "-a", "9",
                     "--method", "baseline"]) == 0
        assert "baseline-nmr" in capsys.readouterr().out

    def test_schedule_flag(self, capsys):
        assert main(["synth", "diffeq", "-l", "6", "-a", "11",
                     "--schedule"]) == 0
        assert "Step" in capsys.readouterr().out

    def test_json_output(self, capsys):
        assert main(["synth", "diffeq", "-l", "6", "-a", "11",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["graph"] == "diffeq"
        assert 0 < payload["reliability"] < 1

    def test_infeasible_returns_2(self, capsys):
        assert main(["synth", "fir", "-l", "3", "-a", "9"]) == 2
        assert "no solution" in capsys.readouterr().err

    def test_unknown_benchmark_returns_1(self, capsys):
        assert main(["synth", "aes", "-l", "5", "-a", "9"]) == 1
        assert "error" in capsys.readouterr().err

    def test_graph_from_file(self, tmp_path, capsys):
        builder = DFGBuilder("mini")
        a = builder.adder()
        builder.mul(deps=[a])
        path = tmp_path / "mini.dfg"
        textio.save(builder.build(), path)
        assert main(["synth", str(path), "-l", "6", "-a", "8"]) == 0
        assert "mini" in capsys.readouterr().out

    def test_library_from_file(self, tmp_path, capsys):
        path = tmp_path / "lib.json"
        library_io.save(paper_library(), path)
        assert main(["synth", "diffeq", "-l", "6", "-a", "11",
                     "--library", str(path)]) == 0

    def test_versions_area_model(self, capsys):
        assert main(["synth", "fir", "-l", "11", "-a", "8",
                     "--area-model", "versions"]) == 0


class TestBench:
    def test_list(self, capsys):
        assert main(["bench"]) == 0
        out = capsys.readouterr().out
        for name in ("fir", "ew", "diffeq"):
            assert name in out

    def test_inspect(self, capsys):
        assert main(["bench", "fir"]) == 0
        out = capsys.readouterr().out
        assert "operations: 23" in out


class TestCharacterize:
    def test_calibrated_only(self, capsys):
        assert main(["characterize", "--calibrated-only"]) == 0
        out = capsys.readouterr().out
        assert "0.98702" in out  # predicted Kogge-Stone point

    def test_full(self, capsys):
        assert main(["characterize", "--bits", "4"]) == 0
        assert "characterized" in capsys.readouterr().out


class TestExperiment:
    def test_fig5(self, capsys):
        assert main(["experiment", "fig5"]) == 0
        assert "0.82783" in capsys.readouterr().out

    def test_table2c(self, capsys):
        assert main(["experiment", "table2c"]) == 0
        assert "0.70723" in capsys.readouterr().out

    def test_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["experiment", "table9"])


class TestExplore:
    def test_sweep(self, capsys):
        assert main(["explore", "diffeq", "--latencies", "5", "6",
                     "--areas", "11"]) == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out


class TestEngineFlags:
    def test_synth_stats(self, capsys):
        assert main(["synth", "diffeq", "-l", "6", "-a", "11",
                     "--stats"]) == 0
        captured = capsys.readouterr()
        assert "engine statistics" in captured.err
        assert "evaluations requested" in captured.err
        assert "engine statistics" not in captured.out  # stdout stays clean

    def test_explore_stats(self, capsys):
        assert main(["explore", "diffeq", "--latencies", "5", "6",
                     "--areas", "11", "--stats"]) == 0
        captured = capsys.readouterr()
        assert "Pareto frontier" in captured.out
        assert "engine statistics" in captured.err

    def test_explore_workers_matches_serial(self, capsys):
        assert main(["explore", "diffeq", "--latencies", "5", "6",
                     "--areas", "11"]) == 0
        serial = capsys.readouterr().out
        assert main(["explore", "diffeq", "--latencies", "5", "6",
                     "--areas", "11", "--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_experiment_workers(self, capsys):
        assert main(["experiment", "fig5", "--workers", "2"]) == 0
        assert "Figure 5" in capsys.readouterr().out


class TestCacheDir:
    def _snapshot_file(self, tmp_path):
        from repro.core import cache_store

        return cache_store.snapshot_path(str(tmp_path))

    def test_synth_writes_and_reuses_a_snapshot(self, tmp_path, capsys):
        import os

        from repro.core import EvaluationEngine, cache_store, find_design
        from repro.core import merge_snapshot
        from repro.bench import diffeq
        from repro.library import paper_library

        args = ["synth", "diffeq", "-l", "6", "-a", "11",
                "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        first = capsys.readouterr().out
        path = self._snapshot_file(tmp_path)
        assert os.path.exists(path)
        # the saved snapshot must carry real cache entries that answer
        # an equivalent search from memory
        engine = EvaluationEngine()
        assert merge_snapshot(engine, cache_store.load(path)) > 0
        find_design(diffeq(), paper_library(), 6, 11, engine=engine)
        assert engine.stats.hits > 0
        # and a second CLI run against the cache prints the same design
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_infeasible_synth_still_persists_exploration(self, tmp_path,
                                                         capsys):
        import os

        assert main(["synth", "fir", "-l", "3", "-a", "9",
                     "--cache-dir", str(tmp_path)]) == 2
        capsys.readouterr()
        assert os.path.exists(self._snapshot_file(tmp_path))

    def test_corrupted_snapshot_warns_and_runs_cold(self, tmp_path,
                                                    capsys):
        assert main(["synth", "diffeq", "-l", "6", "-a", "11",
                     "--cache-dir", str(tmp_path)]) == 0
        good = capsys.readouterr().out
        path = self._snapshot_file(tmp_path)
        with open(path, "rb") as fh:
            data = bytearray(fh.read())
        data[-1] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(bytes(data))
        assert main(["synth", "diffeq", "-l", "6", "-a", "11",
                     "--cache-dir", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert captured.out == good
        assert "ignoring engine cache" in captured.err
        assert "integrity" in captured.err

    def test_version_mismatch_warns_and_runs_cold(self, tmp_path, capsys):
        from repro.core import cache_store

        path = self._snapshot_file(tmp_path)
        with open(path, "wb") as fh:
            fh.write(cache_store.MAGIC + b" v999\ndeadbeef\npayload")
        assert main(["synth", "diffeq", "-l", "6", "-a", "11",
                     "--cache-dir", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "reliability" in captured.out
        assert "ignoring engine cache" in captured.err
        assert "999" in captured.err

    def test_explore_cache_dir_output_is_stable(self, tmp_path, capsys):
        args = ["explore", "diffeq", "--latencies", "5", "6",
                "--areas", "11", "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_experiment_workers_cache_dir(self, tmp_path, capsys):
        import os

        assert main(["experiment", "fig5", "--workers", "2",
                     "--cache-dir", str(tmp_path)]) == 0
        first = capsys.readouterr().out
        assert "Figure 5" in first
        assert os.path.exists(self._snapshot_file(tmp_path))
        assert main(["experiment", "fig5", "--workers", "2",
                     "--cache-dir", str(tmp_path)]) == 0
        assert capsys.readouterr().out == first

    def test_experiment_all_flushes_between_tables(self, tmp_path,
                                                   monkeypatch, capsys):
        """`experiment all --cache-dir` must persist after *each*
        table/figure, so a crash mid-run keeps the earlier work.  A
        driver that dies on the second suite proves it: the first
        suite's snapshot is already on disk."""
        import os

        from repro import experiments

        path = self._snapshot_file(tmp_path)
        seen = {}

        def boom():
            # observed *at crash time*: the previous suites must have
            # flushed already (an exit-time save cannot explain this)
            seen["snapshot_exists"] = os.path.exists(path)
            raise RuntimeError("simulated crash")

        monkeypatch.setattr(experiments, "run_fig7", boom, raising=True)
        with pytest.raises(RuntimeError, match="simulated crash"):
            main(["experiment", "all", "--cache-dir", str(tmp_path)])
        capsys.readouterr()
        assert seen["snapshot_exists"], \
            "no snapshot persisted before the crash"
        from repro.core import EvaluationEngine, cache_store, merge_snapshot

        engine = EvaluationEngine()
        assert merge_snapshot(engine, cache_store.load(path)) > 0


class TestCacheServer:
    """The --cache-server flag and the cache-serve subcommand."""

    def test_synth_against_a_live_server(self, tmp_path, capsys):
        from repro.core import cache_server, set_default_engine

        address = str(tmp_path / "srv.sock")
        with cache_server.CacheServer(address) as server:
            args = ["synth", "diffeq", "-l", "6", "-a", "11",
                    "--cache-server", address]
            # fresh default engines stand in for separate processes:
            # the first run must publish to the server, the second must
            # serve itself from the first one's entries
            set_default_engine(None)
            try:
                assert main(args) == 0
                first = capsys.readouterr().out
                assert server.entry_count() > 0, \
                    "the run left nothing on the server"
                set_default_engine(None)
                assert main(args) == 0
            finally:
                set_default_engine(None)
            assert capsys.readouterr().out == first
            assert server.stats.hits > 0, \
                "the second run never hit the first run's entries"

    def test_unreachable_server_warns_and_runs_local(self, tmp_path,
                                                     capsys):
        assert main(["synth", "diffeq", "-l", "6", "-a", "11"]) == 0
        reference = capsys.readouterr().out
        assert main(["synth", "diffeq", "-l", "6", "-a", "11",
                     "--cache-server", str(tmp_path / "gone.sock")]) == 0
        captured = capsys.readouterr()
        assert captured.out == reference
        assert "unreachable" in captured.err

    def test_explore_auto_server_matches_serial(self, capsys):
        assert main(["explore", "diffeq", "--latencies", "5", "6",
                     "--areas", "11"]) == 0
        serial = capsys.readouterr().out
        assert main(["explore", "diffeq", "--latencies", "5", "6",
                     "--areas", "11", "--workers", "2",
                     "--cache-server", "auto"]) == 0
        assert capsys.readouterr().out == serial

    def test_auto_server_socket_lives_in_cache_dir(self, tmp_path,
                                                   capsys):
        import os

        assert main(["synth", "diffeq", "-l", "6", "-a", "11",
                     "--cache-server", "auto",
                     "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        # the ephemeral server is gone afterwards (socket removed) but
        # the cache dir snapshot carries what it collected
        assert not os.path.exists(
            str(tmp_path / "cache-server.sock"))
        assert os.path.exists(
            os.path.join(str(tmp_path), "engine-cache.bin"))

    def test_cache_serve_seeds_serves_and_shuts_down(self, tmp_path,
                                                     capsys):
        import threading
        import time

        from repro.core import cache_server
        from repro.errors import CacheError

        # populate a cache dir first
        assert main(["synth", "diffeq", "-l", "6", "-a", "11",
                     "--cache-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        address = str(tmp_path / "serve.sock")
        exit_codes = []
        thread = threading.Thread(
            target=lambda: exit_codes.append(
                main(["cache-serve", "--address", address,
                      "--cache-dir", str(tmp_path)])),
            daemon=True)
        thread.start()
        client = cache_server.CacheClient(address, timeout=5.0)
        deadline = time.monotonic() + 10.0
        while True:
            try:
                client.ping()
                break
            except CacheError:
                if time.monotonic() > deadline:
                    raise
                time.sleep(0.05)
        stats = client.stats()
        assert stats["entries"] > 0, "server did not seed from the dir"
        client.shutdown()
        client.close()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert exit_codes == [0]


class TestCacheStats:
    """The cache-stats subcommand against a live server."""

    def test_text_report(self, tmp_path, capsys):
        from repro.core import cache_server

        address = str(tmp_path / "srv.sock")
        with cache_server.CacheServer(address) as server:
            server.seed({"density": [((("g",), "sig", 7), "value")]})
            assert main(["cache-stats", "--address", address]) == 0
            out = capsys.readouterr().out
        assert f"cache server at {address}" in out
        assert "entries     : 1" in out
        assert "density=1" in out

    def test_json_report(self, tmp_path, capsys):
        from repro.core import cache_server

        address = str(tmp_path / "srv.sock")
        with cache_server.CacheServer(address) as server:
            with cache_server.CacheClient(address) as client:
                client.put("timing", ("k",), ("starts", 3))
                client.get("timing", ("k",))
                client.get("timing", ("absent",))
            assert main(["cache-stats", "--address", address,
                         "--json"]) == 0
            payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 1
        assert payload["gets"] == 2 and payload["hits"] == 1
        assert payload["hit_rate"] == 0.5
        assert payload["layer_sizes"]["timing"] == 1

    def test_cache_dir_resolves_default_socket(self, tmp_path, capsys):
        from repro.core import cache_server

        address = cache_server.default_address(str(tmp_path))
        with cache_server.CacheServer(address):
            assert main(["cache-stats", "--cache-dir",
                         str(tmp_path)]) == 0
            assert "cache server at" in capsys.readouterr().out

    def test_requires_a_location(self, capsys):
        assert main(["cache-stats"]) == 2
        assert "--address or --cache-dir" in capsys.readouterr().err

    def test_unreachable_server_is_a_clean_error(self, tmp_path, capsys):
        assert main(["cache-stats", "--address",
                     str(tmp_path / "nothing.sock")]) == 1
        assert "error" in capsys.readouterr().err

    def test_ring_stats_tolerate_a_dead_member(self, tmp_path, capsys):
        from repro.core import shard

        with shard.start_shard_ring(
                2, address=str(tmp_path / "ring.sock")) as ring:
            ring.servers[0].stop()
            assert main(["cache-stats", "--address",
                         ring.address]) == 0
            out = capsys.readouterr().out
        assert f"{ring.addresses[0]}: unreachable" in out
        assert "replica hits" in out and "ring epoch 1" in out

    def test_whole_ring_down_is_a_clean_error(self, tmp_path, capsys):
        spec = f"{tmp_path}/a.sock,{tmp_path}/b.sock"
        assert main(["cache-stats", "--address", spec]) == 1
        assert "no member" in capsys.readouterr().err


class TestCacheRing:
    """The cache-ring subcommand against a live shard ring."""

    def test_status_join_leave_round_trip(self, tmp_path, capsys):
        from repro.core import cache_server, shard

        with shard.start_shard_ring(
                2, address=str(tmp_path / "ring.sock")) as ring:
            assert main(["cache-ring", "status", "--address",
                         ring.addresses[0]]) == 0
            out = capsys.readouterr().out
            assert "ring epoch 1" in out
            assert ring.addresses[1] in out

            with shard.ShardedCacheClient(ring.addresses,
                                          timeout=5.0) as client:
                for index in range(10):
                    client.put("density", (("g",), "k", index), index)
            joiner = cache_server.CacheServer(
                str(tmp_path / "joiner.sock")).start()
            try:
                assert main(["cache-ring", "join",
                             "--address", ring.address,
                             "--member", joiner.address]) == 0
                out = capsys.readouterr().out
                assert "ring epoch 2" in out
                assert joiner.address in out
                assert "warm-pulled" in out
                assert joiner.entry_count() > 0

                assert main(["cache-ring", "leave",
                             "--address", ring.address,
                             "--member", joiner.address,
                             "--json"]) == 0
                payload = json.loads(capsys.readouterr().out)
                assert payload["epoch"] == 3
                assert joiner.address not in payload["members"]
            finally:
                joiner.stop()

    def test_join_requires_member(self, capsys):
        assert main(["cache-ring", "join", "--address", "x.sock"]) == 2
        assert "--member" in capsys.readouterr().err

    def test_leaving_a_stranger_is_a_clean_error(self, tmp_path,
                                                 capsys):
        from repro.core import shard

        with shard.start_shard_ring(
                2, address=str(tmp_path / "ring.sock")) as ring:
            assert main(["cache-ring", "leave",
                         "--address", ring.address,
                         "--member", "stranger.sock"]) == 1
        assert "not a member" in capsys.readouterr().err
