"""Golden-value regression tests for the paper's headline numbers.

``tests/data/golden_values.json`` pins every reliability cell of
Table 2 (all three benchmarks × all three methods) and both Figure 8
curves, captured from the engine-off-equivalent code path.  Cache,
eviction, persistence, or pruning changes that silently drift a paper
number fail here with the exact cell named.

The comparison is exact-or-1e-9-relative: the synthesis pipeline is
deterministic and pure-Python float arithmetic, so any real divergence
shows up many orders of magnitude above the tolerance.

To regenerate after an *intentional* behaviour change::

    PYTHONPATH=src python tests/test_golden_values.py --regenerate
"""

import json
import os

import pytest

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data",
                           "golden_values.json")

TABLE2_BENCHMARKS = ("fir", "ew", "diffeq")


def _load_golden():
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)


def _compute_table2_rows(benchmark):
    from repro.experiments.table2 import run_table2

    table = run_table2(benchmark)
    return [[row[0], row[1], row[2], row[3], row[5]] for row in table.rows]


def _compute_fig8(which):
    from repro.experiments import run_fig8a, run_fig8b

    table = run_fig8a() if which == "a" else run_fig8b()
    return [[bound, reliability] for bound, reliability in table.rows]


def _assert_rows_match(rows, golden_rows, label):
    assert len(rows) == len(golden_rows), \
        f"{label}: {len(rows)} rows, golden has {len(golden_rows)}"
    for row, golden_row in zip(rows, golden_rows):
        bounds, values = row[:2], row[2:]
        golden_bounds, golden_values = golden_row[:2], golden_row[2:]
        assert list(bounds) == list(golden_bounds), label
        for value, golden_value in zip(values, golden_values):
            where = f"{label} at bounds {tuple(bounds)}"
            if golden_value is None:
                assert value is None, \
                    f"{where}: infeasible cell became {value}"
            else:
                assert value is not None, f"{where}: cell became infeasible"
                assert value == pytest.approx(golden_value, rel=1e-9), where


@pytest.mark.parametrize("bench_name", TABLE2_BENCHMARKS)
def test_table2_matches_golden(bench_name):
    golden = _load_golden()
    _assert_rows_match(_compute_table2_rows(bench_name),
                       golden["table2"][bench_name],
                       f"table2[{bench_name}]")


@pytest.mark.parametrize("which", ("a", "b"))
def test_fig8_matches_golden(which):
    golden = _load_golden()
    _assert_rows_match(_compute_fig8(which), golden["fig8"][which],
                       f"fig8{which}")


def test_golden_file_covers_the_full_surface():
    golden = _load_golden()
    assert sorted(golden["table2"]) == sorted(TABLE2_BENCHMARKS)
    assert sorted(golden["fig8"]) == ["a", "b"]
    for benchmark in TABLE2_BENCHMARKS:
        assert len(golden["table2"][benchmark]) >= 6
    # every Table 2 section must pin at least one feasible cell per
    # method column, otherwise the regression net has holes
    for benchmark in TABLE2_BENCHMARKS:
        rows = golden["table2"][benchmark]
        for column in range(2, 5):
            assert any(row[column] is not None for row in rows), \
                (benchmark, column)


def _regenerate():
    golden = {
        "table2": {benchmark: _compute_table2_rows(benchmark)
                   for benchmark in TABLE2_BENCHMARKS},
        "fig8": {which: _compute_fig8(which) for which in ("a", "b")},
    }
    with open(GOLDEN_PATH, "w") as fh:
        json.dump(golden, fh, indent=1)
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
