#!/usr/bin/env python3
"""Bring your own kernel: custom DFGs and alternate objectives.

Builds a 4-tap correlator kernel as a custom data-flow graph,
round-trips it through the text format, renders DOT, and exercises
the paper's future-work objectives: minimize area under a reliability
floor, and minimize latency under an area bound.

Run:  python examples/custom_benchmark.py
"""

import tempfile
from pathlib import Path

from repro.dfg import DFGBuilder, summarize, to_dot
from repro.dfg import textio
from repro.library import paper_library
from repro.core import find_design, minimize_area, minimize_latency


def build_correlator():
    """y = sum_i (x_i * h_i), plus an energy term (x_0 + x_3)^2."""
    builder = DFGBuilder("correlator4")
    products = [builder.mul(label=f"x{i}*h{i}") for i in range(4)]
    s1 = builder.adder(deps=products[:2])
    s2 = builder.adder(deps=products[2:])
    total = builder.adder(deps=[s1, s2], label="dot")
    edge = builder.adder(label="x0+x3")
    energy = builder.mul(deps=[edge, edge], label="energy")
    builder.adder(deps=[total, energy], label="out")
    return builder.build()


def main():
    graph = build_correlator()
    print("kernel:", summarize(graph))

    # persistence round-trip (text format)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "correlator.dfg"
        textio.save(graph, path)
        print(f"\nsaved to {path.name}:")
        print(path.read_text())
        graph = textio.load(path)

    library = paper_library()
    result = find_design(graph, library, latency_bound=7, area_bound=12)
    print("max-reliability design at (Ld=7, Ad=12):")
    print(result.as_text())

    smallest = minimize_area(graph, library, latency_bound=8,
                             min_reliability=0.90)
    print(f"\nsmallest design with R >= 0.90 at Ld=8: area={smallest.area}, "
          f"R={smallest.reliability:.5f}")

    fastest = minimize_latency(graph, library, area_bound=12,
                               min_reliability=0.90)
    print(f"fastest design with R >= 0.90 at Ad=12: "
          f"latency={fastest.latency}, R={fastest.reliability:.5f}")

    print("\nDOT rendering of the scheduled design:")
    starts = {op: step + 1 for op, step in result.schedule.starts.items()}
    print(to_dot(graph, start_steps=starts))


if __name__ == "__main__":
    main()
