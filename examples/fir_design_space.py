#!/usr/bin/env python3
"""Design-space exploration of the FIR filter (paper Section 7).

Sweeps the latency and area bounds over the paper's Figure 8 / Table 2
ranges, prints the trade-off curves and the three-way comparison, and
reports the Pareto frontier over (latency, area, reliability).

Run:  python examples/fir_design_space.py
"""

from repro.bench import fir16
from repro.library import paper_library
from repro.core import pareto_frontier, sweep_bounds
from repro.experiments import run_fig8a, run_fig8b, run_table2


def main():
    print(run_fig8a().as_text())
    print()
    print(run_fig8b().as_text())
    print()
    print(run_table2("fir").as_text())
    print()

    points = sweep_bounds(fir16(), paper_library(),
                          latency_bounds=range(9, 14),
                          area_bounds=range(6, 15, 2))
    frontier = pareto_frontier(points)
    print("Pareto-optimal FIR designs (latency, area, reliability):")
    for point in sorted(frontier, key=lambda p: p.result.latency):
        result = point.result
        print(f"  latency {result.latency:>2}  area {result.area:>2}  "
              f"reliability {result.reliability:.5f}  "
              f"versions {result.version_histogram()}")


if __name__ == "__main__":
    main()
