#!/usr/bin/env python3
"""End-to-end: gate-level characterization feeding the HLS flow.

1. generates the five component netlists (three adders, two
   multipliers),
2. runs the SEU characterization pipeline (per-node critical charge,
   exact logical-masking fault injection, electrical/latching
   derating, ripple-carry anchoring — the paper's Figure 2 chain),
3. synthesizes the DiffEq benchmark with the *generated* library and
   compares against the paper's Table 1 library.

Run:  python examples/characterize_components.py
"""

from repro.bench import diffeq
from repro.charlib import (
    brent_kung_adder,
    carry_save_multiplier,
    characterize_library,
    kogge_stone_adder,
    leapfrog_multiplier,
    masking_campaign,
    average_masking,
    ripple_carry_adder,
)
from repro.library import paper_library
from repro.core import find_design
from repro.errors import NoSolutionError


def main():
    bits = 8
    netlists = {
        "adder1": ("add", ripple_carry_adder(bits)),
        "adder2": ("add", brent_kung_adder(bits)),
        "adder3": ("add", kogge_stone_adder(bits)),
        "mult1": ("mul", carry_save_multiplier(bits)),
        "mult2": ("mul", leapfrog_multiplier(bits)),
    }

    print("component structure and logical masking:")
    for name, (_, netlist) in netlists.items():
        campaign = masking_campaign(netlist, vector_count=256, seed=7)
        print(f"  {name:<8} {netlist.name:<10} gates={netlist.gate_count():>4}"
              f"  depth={netlist.depth():>3}"
              f"  avg-masking={average_masking(campaign):.3f}")
    print()

    library, reports = characterize_library(netlists, anchor="adder1")
    print("generated library (anchored at ripple-carry = 0.999):")
    print(library.as_table())
    print()

    graph = diffeq()
    for lib_name, library_used in (("generated", library),
                                   ("paper Table 1", paper_library())):
        try:
            result = find_design(graph, library_used, 7, 11)
            print(f"DiffEq with the {lib_name} library: "
                  f"R={result.reliability:.5f}, area={result.area}, "
                  f"latency={result.latency}")
        except NoSolutionError as exc:
            print(f"DiffEq with the {lib_name} library: {exc}")


if __name__ == "__main__":
    main()
