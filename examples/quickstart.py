#!/usr/bin/env python3
"""Quickstart: synthesize a small design for maximum reliability.

Builds a tiny data-flow graph, runs the three synthesis approaches of
the paper (reliability-centric, redundancy baseline, combined) under
the same latency/area bounds, and prints what each achieved.

Run:  python examples/quickstart.py
"""

from repro import DFGBuilder, paper_library
from repro.core import baseline_design, combined_design, find_design


def build_kernel():
    """y = (a + b) * (c + d) + e * f — five operations."""
    builder = DFGBuilder("kernel")
    s1 = builder.adder(label="a+b")
    s2 = builder.adder(label="c+d")
    p1 = builder.mul(deps=[s1, s2], label="(a+b)*(c+d)")
    p2 = builder.mul(label="e*f")
    builder.adder(deps=[p1, p2], label="sum")
    return builder.build()


def main():
    graph = build_kernel()
    library = paper_library()
    latency_bound, area_bound = 6, 10

    print(f"graph: {graph.name} with {len(graph)} operations")
    print(f"bounds: latency <= {latency_bound}, area <= {area_bound}")
    print()
    print("resource library (paper Table 1):")
    print(library.as_table())
    print()

    for name, method in (("reliability-centric (ours)", find_design),
                         ("redundancy baseline (ref [3])", baseline_design),
                         ("combined", combined_design)):
        result = method(graph, library, latency_bound, area_bound)
        print(f"=== {name} ===")
        print(result.as_text())
        print()
        print("schedule:")
        print(result.schedule.as_text())
        print()


if __name__ == "__main__":
    main()
