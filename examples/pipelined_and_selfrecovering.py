#!/usr/bin/env python3
"""Extensions in action: pipelined data paths and self-recovery.

1. Pipeline the FIR filter at decreasing initiation intervals and
   watch the area/throughput trade-off (the paper claims pipelined
   support in Section 6 but never shows it).
2. Compare four fault-tolerance strategies on DiffEq under the same
   bounds: version selection (the paper), instance-level NMR (its
   baseline [3]), full-graph self-recovery duplication (its related
   work [5]), and the combined approach.
3. Check how reliable a voter must be before TMR stops paying off.

Run:  python examples/pipelined_and_selfrecovering.py
"""

from repro.bench import diffeq, fir16
from repro.hls import allocate_registers, pipelined_realization
from repro.library import paper_library
from repro.core import (
    baseline_design,
    combined_design,
    find_design,
    self_recovery_design,
)
from repro.reliability.nmr import nmr_with_voter


def pipeline_sweep():
    graph = fir16()
    library = paper_library()
    allocation = {op.op_id: library.fastest_smallest(op.rtype)
                  for op in graph}
    print("pipelined FIR: initiation interval vs area")
    print(f"{'II':>4} {'area':>5} {'latency':>8} {'registers':>10}")
    for ii in (2, 4, 6, 8, 12):
        schedule, binding = pipelined_realization(graph, allocation, ii)
        registers = allocate_registers(schedule)
        print(f"{ii:>4} {binding.area:>5} {schedule.latency:>8} "
              f"{registers.count:>10}")
    print()


def strategy_comparison():
    graph = diffeq()
    library = paper_library()
    latency_bound, area_bound = 12, 22
    print(f"DiffEq fault-tolerance strategies at Ld={latency_bound}, "
          f"Ad={area_bound}")
    strategies = (
        ("version selection (paper)", find_design),
        ("instance NMR (ref [3])", baseline_design),
        ("combined", combined_design),
        ("self-recovery (ref [5])", self_recovery_design),
    )
    for name, method in strategies:
        result = method(graph, library, latency_bound, area_bound)
        print(f"  {name:<28} R={result.reliability:.6f} "
              f"area={result.area:>2} latency={result.latency}")
    print()


def voter_threshold():
    module = 0.969
    print("TMR with an imperfect voter (module R = 0.969):")
    for voter in (1.0, 0.9999, 0.999, 0.99, 0.969):
        group = nmr_with_voter(module, 3, voter)
        verdict = "helps" if group > module else "HURTS"
        print(f"  voter R={voter:<7} group R={group:.6f}  ({verdict})")


def main():
    pipeline_sweep()
    strategy_comparison()
    voter_threshold()


if __name__ == "__main__":
    main()
