"""Machine-readable benchmark results: ``BENCH_<name>.json`` emission.

Every benchmark runner that measures wall clock writes its numbers
through :func:`write_bench_json`, so the perf trajectory of the
repository can be tracked across PRs by diffing (or collecting) small
JSON documents instead of scraping pytest output.

Schema (documented in README.md, "Benchmark result files"):

.. code-block:: json

    {
      "schema": 1,
      "benchmark": "fastsched",
      "created": "2026-07-28T12:00:00+00:00",
      "python": "3.11.7",
      "results": { ... benchmark-specific payload ... }
    }

``results`` is benchmark-owned; the envelope is stable.  Files land in
the repository root by default; set ``BENCH_JSON_DIR`` to redirect
them (e.g. into a CI artifact directory).
"""

from __future__ import annotations

import json
import os
import platform
from datetime import datetime, timezone

SCHEMA_VERSION = 1


def write_bench_json(name: str, results: dict) -> str:
    """Write ``BENCH_<name>.json`` and return its path."""
    directory = os.environ.get(
        "BENCH_JSON_DIR",
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"BENCH_{name}.json")
    document = {
        "schema": SCHEMA_VERSION,
        "benchmark": name,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "results": results,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
