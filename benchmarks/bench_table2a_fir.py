"""Benchmark: regenerate Table 2(a) — FIR under nine bound pairs."""

import pytest

from repro.experiments import run_table2


def test_table2a_fir(once):
    table = once(run_table2, "fir")
    print("\n" + table.as_text())
    cells = {(row[0], row[1]): row for row in table.rows}

    # exact paper matches at sound-accounting-compatible cells
    assert cells[(10, 9)][3] == pytest.approx(0.59998, abs=5e-5)
    assert cells[(10, 11)][3] == pytest.approx(0.69516, abs=5e-5)
    assert cells[(10, 9)][2] == pytest.approx(0.48467, abs=5e-5)

    for (latency_bound, area_bound), row in cells.items():
        ref3, ours, combined = row[2], row[3], row[5]
        assert ref3 is not None and ours is not None
        # paper shape: ours wins at tight area bounds...
        if area_bound == 9:
            assert ours > ref3
        # ...and the combined approach never loses to the baseline
        assert combined >= ref3 - 1e-12
        assert combined >= ours - 1e-12


def test_table2a_paper_values_reachable_with_paper_accounting(once):
    table = once(run_table2, "fir", area_model="versions")
    print("\n" + table.as_text())
    cells = {(row[0], row[1]): row for row in table.rows}
    # the paper's flagship (11, 11) cell, 0.89798, under its accounting
    assert cells[(11, 11)][3] >= 0.89798 - 5e-5
