"""Benchmark: extension experiments (pipelining, self-recovery, voters,
extra benchmarks) — the paper's motivated-but-unevaluated directions."""

from repro.experiments import (
    run_extra_benchmarks,
    run_pipeline_tradeoff,
    run_self_recovery_comparison,
    run_voter_sensitivity,
)


def test_pipeline_tradeoff(once):
    table = once(run_pipeline_tradeoff)
    print("\n" + table.as_text())
    areas = table.column("area")
    iis = table.column("II")
    # throughput costs area: area is non-increasing as II grows
    paired = sorted(zip(iis, areas))
    sorted_areas = [a for _, a in paired]
    assert sorted_areas == sorted(sorted_areas, reverse=True)
    # at a loose II the design degenerates to the sequential area (8)
    assert sorted_areas[-1] == 8


def test_self_recovery_comparison(once):
    table = once(run_self_recovery_comparison)
    print("\n" + table.as_text())
    tighter_than_2x = 0
    for row in table.rows:
        ours, nmr, combined, recovery, overhead = row[2:]
        assert ours is not None
        if recovery is not None:
            # duplication detects/recovers: high reliability...
            assert recovery > ours
            # ...at no more than double the single-copy area
            assert overhead is not None and 1.0 < overhead <= 2.0
            if overhead < 2.0:
                tighter_than_2x += 1
        if combined is not None and nmr is not None:
            assert combined >= nmr - 1e-12
    # under tight bounds, interleaving the copies saves real area
    assert tighter_than_2x >= 1


def test_voter_sensitivity(once):
    table = once(run_voter_sensitivity)
    print("\n" + table.as_text())
    gains = table.column("gain over bare module")
    voters = table.column("voter R")
    # gain degrades monotonically with voter reliability
    paired = sorted(zip(voters, gains))
    ordered = [g for _, g in paired]
    assert ordered == sorted(ordered)
    # perfect voter helps, a 0.9 voter hurts
    assert gains[0] > 0
    assert min(gains) < 0


def test_extra_benchmarks(once):
    table = once(run_extra_benchmarks)
    print("\n" + table.as_text())
    for row in table.rows:
        ref3, ours = row[3], row[4]
        if ref3 is not None and ours is not None:
            # version selection beats the single-version baseline on
            # the wider benchmark set too
            assert ours >= ref3 - 1e-12
