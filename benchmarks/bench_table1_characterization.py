"""Benchmark: regenerate Table 1 (component characterization).

Paper: Table 1 lists (area, delay, reliability) for three adders and
two multipliers; Section 4 gives the adders' Qcritical values and the
anchoring rule (ripple-carry = 0.999).
"""

import pytest

from repro.experiments import (
    run_table1_calibrated,
    run_table1_characterized,
)


def test_table1_calibrated(once):
    table = once(run_table1_calibrated)
    print("\n" + table.as_text())
    rows = {row[0]: row for row in table.rows}
    # exact reproduction of the reliability column from the Qcritical
    # anchors (Figure 2 chain)
    assert rows["adder1"][2] == pytest.approx(0.999, abs=1e-9)
    assert rows["adder2"][2] == pytest.approx(0.969, abs=1e-6)
    assert rows["adder3"][2] == pytest.approx(0.987, abs=5e-4)


def test_table1_characterized(once):
    table = once(run_table1_characterized)
    print("\n" + table.as_text())
    rows = {row[0]: row for row in table.rows}

    def reliability(name):
        return rows[name][6]

    def delay(name):
        return rows[name][5]

    def area(name):
        return rows[name][4]

    # anchor pinned
    assert reliability("adder1") == pytest.approx(0.999, abs=1e-9)
    # paper shape: the ripple-carry adder is the slowest adder but the
    # most reliable; the prefix adders are faster and larger
    assert delay("adder3") < delay("adder1")
    assert area("adder3") > area("adder1")
    assert reliability("adder1") > reliability("adder3")
    # multipliers: leap-frog is the faster, larger, less reliable one
    assert delay("mult2") <= delay("mult1")
    assert area("mult2") >= area("mult1")
    assert reliability("mult2") <= reliability("mult1")
