"""Benchmark: regenerate Figure 9 (average reliabilities per method)."""

from repro.experiments import run_fig9


def test_fig9(once):
    table = once(run_fig9)
    print("\n" + table.as_text())
    for row in table.rows:
        benchmark, ref3, ours, combined = row[0], row[1], row[2], row[3]
        assert ref3 is not None and ours is not None and combined is not None
        # the paper's headline: ours beats the baseline on average for
        # every benchmark, and the combined approach beats both
        assert ours > ref3, benchmark
        assert combined >= ours - 1e-12, benchmark
        # improvements are positive (paper: 21.92/9.67/9.21 %)
        assert row[4] > 0
        assert row[5] > 0
