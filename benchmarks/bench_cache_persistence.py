"""Benchmark: cross-process cache persistence on the Table 2 sweeps.

PR 1's parallel executor ran every worker cold: each of the N processes
re-warmed its own engine from nothing, so ``workers=N`` paid the full
schedule/bind cost N times over.  The persistence layer closes that
gap: the first ``workers=4`` sweep merges every worker's cache back
into the parent engine on join, and the second sweep pre-warms all
workers from the merged snapshot.

This benchmark runs the paper's full Table 2 grids (fir, ew, diffeq)
through ``sweep_bounds(workers=4)`` twice through one sharing hub and
asserts the headline claims:

* the warm-start pass beats the cold-start pass on wall clock
  (``CACHE_BENCH_MIN_SPEEDUP`` to tune; relaxed on CI runners);
* the merged snapshot round-trips through the serialized format and
  re-seeds a fresh engine;
* both passes produce identical designs, also identical to a serial
  engine-off-equivalent sweep (the correctness claim that carries the
  benchmark on noisy machines).

Run with ``-s`` to see the table::

    PYTHONPATH=src python -m pytest -s benchmarks/bench_cache_persistence.py
"""

import os
import time

import pytest

from repro.bench import get_benchmark
from repro.core import (
    EvaluationEngine,
    cache_store,
    merge_snapshot,
    snapshot_engine,
    sweep_bounds,
)
from repro.experiments import ExperimentTable, paper_data
from repro.library import paper_library

WORKLOADS = ("fir", "ew", "diffeq")
WORKERS = 4


def _grid(benchmark):
    grid = paper_data.table2_grid(benchmark)
    return (sorted({latency for latency, _ in grid}),
            sorted({area for _, area in grid}))


def _run_grid(benchmark, **kwargs):
    graph = get_benchmark(benchmark)
    library = paper_library()
    latencies, areas = _grid(benchmark)
    started = time.perf_counter()
    points = sweep_bounds(graph, library, latencies, areas, **kwargs)
    return points, time.perf_counter() - started


@pytest.fixture(scope="module")
def measurements(reference_kernels):
    # reference kernels (see conftest): sharing targets the
    # expensive-compute regime; the compiled core covers the cold path
    rows = {}
    for benchmark in WORKLOADS:
        hub = EvaluationEngine()
        cold_points, cold_time = _run_grid(benchmark, workers=WORKERS,
                                           engine=hub)
        snapshot_bytes = cache_store.dumps(snapshot_engine(hub))
        warm_points, warm_time = _run_grid(benchmark, workers=WORKERS,
                                           engine=hub)
        serial_points, _ = _run_grid(benchmark,
                                     engine=EvaluationEngine())
        rows[benchmark] = {
            "cold_points": cold_points,
            "warm_points": warm_points,
            "serial_points": serial_points,
            "cold_time": cold_time,
            "warm_time": warm_time,
            "snapshot_bytes": snapshot_bytes,
            "hub_entries": hub.cache_size(),
        }
    return rows


def test_warm_start_beats_cold_start(measurements):
    table = ExperimentTable(
        title=f"Cache persistence on Table 2 sweeps (workers={WORKERS})",
        headers=("benchmark", "grid", "cold-start s", "warm-start s",
                 "speedup", "snapshot KiB", "merged entries"),
    )
    total_cold = 0.0
    total_warm = 0.0
    for benchmark, row in measurements.items():
        total_cold += row["cold_time"]
        total_warm += row["warm_time"]
        table.add_row(
            benchmark,
            len(row["warm_points"]),
            round(row["cold_time"], 3),
            round(row["warm_time"], 3),
            round(row["cold_time"] / row["warm_time"], 2),
            len(row["snapshot_bytes"]) // 1024,
            row["hub_entries"],
        )
    overall = total_cold / total_warm
    table.add_note(f"overall warm-start speedup {overall:.2f}x "
                   f"({total_cold:.2f}s -> {total_warm:.2f}s)")
    print("\n" + table.as_text())
    # warm workers skip the schedule/bind work the cold pass computed;
    # CI runners get a looser wall-clock bar — the equivalence tests
    # below carry the correctness claim there
    floor = float(os.environ.get(
        "CACHE_BENCH_MIN_SPEEDUP", "1.05" if os.environ.get("CI") else "1.3"))
    assert overall >= floor, f"expected >= {floor}x, measured {overall:.2f}x"
    for benchmark, row in measurements.items():
        assert row["hub_entries"] > 0, f"{benchmark}: merge-back was empty"


def test_snapshot_round_trip_reseeds_a_fresh_engine(measurements):
    for benchmark, row in measurements.items():
        snapshot = cache_store.loads(row["snapshot_bytes"])
        fresh = EvaluationEngine()
        assert merge_snapshot(fresh, snapshot) > 0, benchmark
        assert fresh.cache_size() == snapshot.entry_count


def test_all_passes_produce_identical_designs(measurements):
    for benchmark, row in measurements.items():
        for cold, warm, serial in zip(row["cold_points"],
                                      row["warm_points"],
                                      row["serial_points"]):
            key = (benchmark, cold.latency_bound, cold.area_bound)
            assert (cold.latency_bound, cold.area_bound) == \
                (warm.latency_bound, warm.area_bound) == \
                (serial.latency_bound, serial.area_bound)
            if cold.result is None:
                assert warm.result is None and serial.result is None, key
                continue
            for other in (warm.result, serial.result):
                assert other is not None, key
                assert cold.result.area == other.area, key
                assert cold.result.latency == other.latency, key
                assert cold.result.reliability == other.reliability, key
                assert cold.result.schedule.starts == \
                    other.schedule.starts, key
