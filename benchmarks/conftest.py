"""Shared fixtures for the reproduction benchmarks.

Every benchmark prints the regenerated table (run pytest with ``-s``
to see them) and asserts the paper's qualitative findings — who wins,
in which bound regime — rather than exact decimals, since our
substrate is a reimplementation, not the authors' testbed.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the benchmarked callable exactly once (experiments are
    deterministic and take seconds; statistical rounds add nothing)."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
