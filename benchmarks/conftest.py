"""Shared fixtures for the reproduction benchmarks.

Every benchmark prints the regenerated table (run pytest with ``-s``
to see them) and asserts the paper's qualitative findings — who wins,
in which bound regime — rather than exact decimals, since our
substrate is a reimplementation, not the authors' testbed.
"""

import os

import pytest


@pytest.fixture(scope="module")
def reference_kernels():
    """Pin a benchmark module to the reference scheduling kernels.

    The compiled core (``hls/fastsched.py``) made cold scheduling on
    the small paper grids cheaper than worker pre-warm or a cache
    server round trip, so with the default kernels the cache-sharing
    benchmarks have nothing left to amortize.  They target the
    expensive-compute regime and keep measuring it there
    (``REPRO_SCHEDULER_IMPL`` propagates into worker processes), while
    ``bench_fastsched.py`` covers the cold path.
    """
    previous = os.environ.get("REPRO_SCHEDULER_IMPL")
    os.environ["REPRO_SCHEDULER_IMPL"] = "reference"
    yield
    if previous is None:
        os.environ.pop("REPRO_SCHEDULER_IMPL", None)
    else:
        os.environ["REPRO_SCHEDULER_IMPL"] = previous


@pytest.fixture
def once(benchmark):
    """Run the benchmarked callable exactly once (experiments are
    deterministic and take seconds; statistical rounds add nothing)."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
