"""Benchmark: regenerate Figure 8 (reliability vs latency / area)."""

import pytest

from repro.experiments import run_fig8a, run_fig8b


def test_fig8a_latency_tradeoff(once):
    table = once(run_fig8a)
    print("\n" + table.as_text())
    values = [row[1] for row in table.rows if row[1] is not None]
    assert len(values) == len(table.rows)
    # paper: reliability grows monotonically with the latency bound
    assert values == sorted(values)
    # endpoints: ~0.48-0.6 at Ld=10 rising strongly by Ld=18
    assert values[0] < 0.7
    assert values[-1] > 0.9
    # at Ld=18 everything fits on type-1 resources: 0.999^23
    assert values[-1] == pytest.approx(0.999 ** 23, abs=1e-3)


def test_fig8b_area_tradeoff(once):
    table = once(run_fig8b)
    print("\n" + table.as_text())
    values = [row[1] for row in table.rows if row[1] is not None]
    assert len(values) == len(table.rows)
    # paper: reliability grows monotonically with the area bound
    assert values == sorted(values)
    assert values[-1] > values[0]
