"""Benchmark: regenerate Figure 7 (FIR schedule comparison)."""

import pytest

from repro.experiments import fig7_schedules, run_fig7


def test_fig7(once):
    table = once(run_fig7)
    print("\n" + table.as_text())
    print("\n" + fig7_schedules())
    rows = {(row[0], row[1]): row for row in table.rows}
    single = rows[("(a) type-2 only", "instances")]
    ours = rows[("(b) ours", "instances")]
    ours_versions = rows[("(b) ours", "versions")]
    # the single-version design is exactly the paper's 0.969^23
    assert single[4] == pytest.approx(0.48467, abs=5e-5)
    # the reliability-centric design wins by a wide margin (paper:
    # 0.48467 -> 0.78943, +63 %); sound instance accounting reaches
    # 0.76572, the paper's own accounting exceeds its 0.78943
    assert ours[4] > 1.5 * single[4]
    assert ours_versions[4] >= 0.78943 - 5e-5
