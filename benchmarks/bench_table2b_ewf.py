"""Benchmark: regenerate Table 2(b) — elliptic wave filter."""

import pytest

from repro.experiments import run_table2


def test_table2b_ew(once):
    table = once(run_table2, "ew")
    print("\n" + table.as_text())
    cells = {(row[0], row[1]): row for row in table.rows}

    # the no-redundancy baseline product: 0.969^25 (paper 0.45509)
    assert cells[(13, 9)][2] == pytest.approx(0.45509, abs=1e-4)

    for (latency_bound, area_bound), row in cells.items():
        ref3, ours, combined = row[2], row[3], row[5]
        if ours is not None and ref3 is not None:
            # ours dominates the bare baseline at tight bounds
            if area_bound <= 9:
                assert ours > ref3
        if combined is not None and ours is not None:
            assert combined >= ours - 1e-12


def test_table2b_versions_accounting(once):
    table = once(run_table2, "ew", area_model="versions")
    print("\n" + table.as_text())
    cells = {(row[0], row[1]): row for row in table.rows}
    # the paper's (15, 5) cell is infeasible under instance accounting
    # but feasible under its own; our value there matches the paper's
    # 0.69739 exactly (14 type-1 operations)
    assert cells[(15, 5)][3] == pytest.approx(0.69739, abs=5e-5)
