"""Benchmark: the sharded cache tier under multi-client load.

PR 8 made the cache tier horizontal: the content-addressed layers are
partitioned by consistent key hash across N cache-server processes
(:mod:`repro.core.shard`), and clients route every get/put/multi-get
to the owning shard.  This benchmark puts numbers behind the tier and
gates the claims that matter:

* **load generator** — ``WORKERS`` client processes replay real cache
  traffic (the layer entries a Table 2 search produces) through a
  :class:`~repro.core.shard.ShardedCacheClient` against rings of 1, 2
  and 4 shards, recording p50/p99 latency, aggregate throughput and
  the per-shard entry split;
* **equivalence gate** — the Table 2 fir grid is swept three ways:
  local engine, engine attached to a single server, engine attached
  to a 2-shard ring — every selected design must be identical, and a
  cross-process sweep over the warmed ring must take remote hits on
  at least two shards (proof the partitioning actually serves);
* **failover gate** — the ring is warmed under RF=2, then one shard
  is killed mid-sweep; the survivors must keep designs identical to
  the local reference *and* serve the dead shard's warm keys from
  replicas (``replica_hits > 0``, warm-after-kill hit ratio gated) —
  recovery, not recomputation.

Results land in ``BENCH_shards.json`` (schema in README.md).

Run with ``-s`` to see the tables::

    PYTHONPATH=src python -m pytest -s benchmarks/bench_shards.py

or standalone (the CI smoke job does), where ``--quick`` trims the
traffic and the grid::

    PYTHONPATH=src python benchmarks/bench_shards.py --quick
"""

import multiprocessing
import statistics
import time

from repro.bench import get_benchmark
from repro.core import (
    EvaluationEngine,
    attach_engine,
    detach_engine,
    find_design,
    sweep_bounds,
)
from repro.core.cache_server import CacheServer
from repro.core.shard import ShardedCacheClient, start_shard_ring
from repro.errors import NoSolutionError
from repro.experiments import ExperimentTable, paper_data
from repro.library import paper_library

from benchjson import write_bench_json

WORKERS = 4
SHARD_COUNTS = (1, 2, 4)
ROUNDS = 6
QUICK_ROUNDS = 2


def _design_fingerprint(result):
    if result is None:
        return None
    return (result.area, result.latency, result.reliability,
            dict(result.schedule.starts),
            dict(result.binding.op_to_instance))


def _point_fingerprints(points):
    return [(p.latency_bound, p.area_bound, _design_fingerprint(p.result))
            for p in points]


def _traffic_entries():
    """Real layer records to replay: export a warmed engine's caches."""
    engine = EvaluationEngine()
    library = paper_library()
    find_design(get_benchmark("diffeq"), library, 8, 20, engine=engine)
    return [(layer, key, value)
            for layer, entries in engine.export_cache_state().items()
            for key, value in entries]


def _client_worker(addresses, entries, rounds, worker_id, out):
    """One load-generator process: timed routed puts then gets."""
    try:
        # RF=1: the load rows measure routed distribution, so every
        # put/get must land on exactly one shard
        client = ShardedCacheClient(addresses, timeout=60.0,
                                    replication=1)
        latencies = []
        for round_no in range(rounds):
            for layer, key, value in entries:
                unique = key + ("w", worker_id, round_no)
                started = time.perf_counter()
                client.put(layer, unique, value)
                latencies.append(time.perf_counter() - started)
            for layer, key, _value in entries:
                unique = key + ("w", worker_id, round_no)
                started = time.perf_counter()
                found = client.get(layer, unique)[0]
                latencies.append(time.perf_counter() - started)
                assert found, (layer, unique)
        client.close()
        out.put((worker_id, latencies))
    except Exception as exc:  # pragma: no cover - failure reporting
        out.put((worker_id, repr(exc)))


def _drive_ring(addresses, entries, rounds):
    """Fan WORKERS load processes at the ring; aggregate latencies."""
    context = multiprocessing.get_context("fork")
    out = context.Queue()
    processes = [
        context.Process(target=_client_worker,
                        args=(addresses, entries, rounds, i, out))
        for i in range(WORKERS)
    ]
    started = time.perf_counter()
    for process in processes:
        process.start()
    latencies = []
    for _ in processes:
        worker_id, payload = out.get(timeout=600.0)
        assert isinstance(payload, list), \
            f"load worker {worker_id} failed: {payload}"
        latencies.extend(payload)
    wall = time.perf_counter() - started
    for process in processes:
        process.join(timeout=60.0)
        assert process.exitcode == 0
    latencies.sort()
    quantiles = statistics.quantiles(latencies, n=100)
    return {
        "workers": WORKERS,
        "ops": len(latencies),
        "wall_s": wall,
        "throughput_ops_s": len(latencies) / wall,
        "p50_ms": statistics.median(latencies) * 1e3,
        "p99_ms": quantiles[98] * 1e3,
        "max_ms": latencies[-1] * 1e3,
    }


def measure_load(quick=False):
    """Replay the same traffic against 1-, 2- and 4-shard rings."""
    entries = _traffic_entries()
    rounds = QUICK_ROUNDS if quick else ROUNDS
    expected = WORKERS * rounds * len(entries)
    rings = {}
    for shards in SHARD_COUNTS:
        with start_shard_ring(shards) as ring:
            row = _drive_ring(ring.addresses, entries, rounds)
            counts = ring.entry_counts()
            stats = [server.stats.as_dict() for server in ring.servers]
        row["shards"] = shards
        row["entries_per_shard"] = counts
        gets = sum(s["gets"] for s in stats)
        hits = sum(s["hits"] for s in stats)
        puts = sum(s["puts"] for s in stats)
        assert puts == expected, (shards, puts, expected)
        assert gets == expected and hits == expected, (shards, gets, hits)
        assert sum(1 for s in stats if s["puts"] > 0) == shards, \
            f"{shards}-shard ring left shards idle: " \
            f"{[s['puts'] for s in stats]}"
        row["server_stats"] = stats
        rings[str(shards)] = row
    return {"rounds": rounds, "entries": len(entries), "rings": rings}


def _grid(quick):
    grid = paper_data.table2_grid("fir")
    latencies = sorted({latency for latency, _ in grid})
    areas = sorted({area for _, area in grid})
    if quick:
        # the loosest bounds: the trimmed grid must keep feasible
        # points, or the quick gate would compare nothing but misses
        latencies, areas = latencies[-2:], areas[-2:]
    return latencies, areas


def measure_equivalence(quick=False):
    """local ≡ single server ≡ 2-shard ring on the Table 2 fir grid,
    plus cross-process remote hits on at least two shards."""
    library = paper_library()
    graph = get_benchmark("fir")
    latencies, areas = _grid(quick)

    local_started = time.perf_counter()
    local = _point_fingerprints(sweep_bounds(
        graph, library, latencies, areas, engine=EvaluationEngine()))
    local_s = time.perf_counter() - local_started

    with CacheServer() as server:
        engine = EvaluationEngine()
        assert attach_engine(engine, server.address)
        single_started = time.perf_counter()
        single = _point_fingerprints(sweep_bounds(
            graph, library, latencies, areas, engine=engine))
        single_s = time.perf_counter() - single_started
        detach_engine(engine)

    with start_shard_ring(2) as ring:
        engine = EvaluationEngine()
        assert attach_engine(engine, ring.addresses[0])  # ring discovery
        sharded_started = time.perf_counter()
        sharded = _point_fingerprints(sweep_bounds(
            graph, library, latencies, areas, engine=engine))
        sharded_s = time.perf_counter() - sharded_started
        detach_engine(engine)
        entry_split = ring.entry_counts()
        # a *cross-process* sweep over the warmed ring: workers attach
        # their own engines and must be served by both shards
        hits_before = [server.stats.hits for server in ring.servers]
        cross = _point_fingerprints(sweep_bounds(
            graph, library, latencies, areas, workers=2,
            engine=EvaluationEngine(), cache_server=ring.address))
        shard_hits = [server.stats.hits - before for server, before
                      in zip(ring.servers, hits_before)]

    assert single == local, "single-server sweep diverged from local"
    assert sharded == local, "sharded sweep diverged from local"
    assert cross == local, "cross-process sharded sweep diverged"
    assert all(count > 0 for count in entry_split), entry_split
    shards_serving = sum(1 for count in shard_hits if count > 0)
    assert shards_serving >= 2, \
        f"cross-process hits landed on {shards_serving} shard(s): " \
        f"{shard_hits}"
    return {
        "grid_points": len(latencies) * len(areas),
        "feasible_points": sum(1 for _, _, fp in local if fp is not None),
        "local_s": local_s,
        "single_server_s": single_s,
        "sharded_s": sharded_s,
        "entries_per_shard": entry_split,
        "cross_process_hits_per_shard": shard_hits,
        "designs_identical": True,
    }


def measure_failover(quick=False):
    """Kill one shard mid-sweep under RF=2: fail-open, designs still
    identical, and the dead shard's warm keys served from replicas."""
    library = paper_library()
    graph = get_benchmark("fir")
    latencies, areas = _grid(quick)
    pairs = [(latency, area) for latency in latencies for area in areas]

    reference = []
    off = EvaluationEngine(cache=False)
    for latency, area in pairs:
        try:
            result = find_design(graph, library, latency, area, engine=off)
        except NoSolutionError:
            result = None
        reference.append(_design_fingerprint(result))

    with start_shard_ring(2) as ring:
        # warm both copies of every key the sweep will ask for
        warm = EvaluationEngine()
        assert attach_engine(warm, ring.address)
        sweep_bounds(graph, library, latencies, areas, engine=warm)
        detach_engine(warm)

        engine = EvaluationEngine()
        assert attach_engine(engine, ring.address, timeout=2.0)
        survivor = ring.servers[1]
        survived = []
        gets_mark = hits_mark = 0
        started = time.perf_counter()
        for count, (latency, area) in enumerate(pairs):
            if count == len(pairs) // 2:
                ring.servers[0].stop()  # dies under the live clients
                gets_mark = survivor.stats.gets
                hits_mark = survivor.stats.hits
            try:
                result = find_design(graph, library, latency, area,
                                     engine=engine)
            except NoSolutionError:
                result = None
            survived.append(_design_fingerprint(result))
        wall = time.perf_counter() - started
        assert engine.backend is not None, \
            "one dead shard flipped the whole fleet to local fallback"
        client = engine.backend.client
        counters = dict(client.counters)
        dead = client.dead_shards
        detach_engine(engine)
        gets_after = survivor.stats.gets - gets_mark
        hits_after = survivor.stats.hits - hits_mark

    assert survived == reference, \
        "designs diverged after the mid-sweep shard kill"
    assert dead == (ring.addresses[0],), dead
    assert counters["replica_hits"] > 0, \
        "the dead shard's warm keys were recomputed, not recovered"
    ratio = hits_after / gets_after if gets_after else 0.0
    assert ratio >= 0.5, \
        f"warm-after-kill hit ratio {ratio:.2f}: the survivor served " \
        f"{hits_after}/{gets_after}"
    return {
        "grid_points": len(pairs),
        "killed_shard": 0,
        "dead_shards_observed": list(dead),
        "sweep_s": wall,
        "designs_identical": True,
        "replication": 2,
        "replica_hits": counters["replica_hits"],
        "read_repairs": counters["read_repairs"],
        "warm_hits_after_kill": hits_after,
        "gets_after_kill": gets_after,
        "warm_hit_ratio_after_kill": ratio,
    }


def report(load, equivalence, failover):
    table = ExperimentTable(
        title=f"Sharded cache tier under load (workers={WORKERS})",
        headers=("shards", "ops", "p50 ms", "p99 ms", "ops/s",
                 "entries/shard"),
    )
    for shards in SHARD_COUNTS:
        row = load["rings"][str(shards)]
        table.add_row(
            shards,
            row["ops"],
            round(row["p50_ms"], 3),
            round(row["p99_ms"], 3),
            int(row["throughput_ops_s"]),
            "/".join(str(count) for count in row["entries_per_shard"]),
        )
    base = load["rings"]["1"]["throughput_ops_s"]
    best = max(row["throughput_ops_s"] for row in load["rings"].values())
    table.add_note(f"best/1-shard throughput ratio {best / base:.2f}")

    gates = ExperimentTable(
        title="Sharded tier gates (Table 2 fir grid)",
        headers=("gate", "grid", "local s", "tier s", "identical"),
    )
    gates.add_row("single server", equivalence["grid_points"],
                  round(equivalence["local_s"], 3),
                  round(equivalence["single_server_s"], 3), "yes")
    gates.add_row("2-shard ring", equivalence["grid_points"],
                  round(equivalence["local_s"], 3),
                  round(equivalence["sharded_s"], 3), "yes")
    gates.add_row("shard killed mid-sweep", failover["grid_points"],
                  round(equivalence["local_s"], 3),
                  round(failover["sweep_s"], 3), "yes")
    gates.add_note(
        f"cross-process hits per shard: "
        f"{equivalence['cross_process_hits_per_shard']}")
    gates.add_note(
        f"failover (RF=2): {failover['replica_hits']} replica hits, "
        f"warm-after-kill hit ratio "
        f"{failover['warm_hit_ratio_after_kill']:.2f}")

    path = write_bench_json("shards", {
        "load": load,
        "equivalence": equivalence,
        "failover": failover,
    })
    print("\n" + table.as_text())
    print("\n" + gates.as_text())
    print(f"\nresults written to {path}")


def test_sharded_tier_load_and_gates():
    load = measure_load()
    equivalence = measure_equivalence()
    failover = measure_failover()
    report(load, equivalence, failover)
    for shards in SHARD_COUNTS:
        row = load["rings"][str(shards)]
        assert row["p50_ms"] > 0.0 and row["p99_ms"] >= row["p50_ms"]
    assert equivalence["designs_identical"]
    assert failover["designs_identical"]


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="trim the traffic and the grid (CI smoke); "
                             "only design mismatches fail, never timing")
    args = parser.parse_args()
    if args.quick:
        report(measure_load(quick=True), measure_equivalence(quick=True),
               measure_failover(quick=True))
        print("sharded == single == local on the quick grid: ok")
    else:
        test_sharded_tier_load_and_gates()
