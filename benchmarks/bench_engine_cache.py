"""Benchmark: evaluation-engine cache effectiveness on Table 2 sweeps.

Runs the paper's Table 2 (Ld, Ad) grids through ``sweep_bounds`` twice
per benchmark: once with the cache disabled (the seed code path, which
re-ran every density scan, list schedule and ASAP pass from scratch at
every grid point) and once through one shared ``EvaluationEngine``.
Reports wall time, evaluations per second and cache hit rate, asserts
the two paths produce identical designs, and asserts the headline
claim: the shared engine is at least 2x faster on the full grid.

Results are also written to ``BENCH_engine_cache.json`` (schema in
README.md) so the perf trajectory is tracked across PRs.

Run with ``-s`` to see the table:

    PYTHONPATH=src python -m pytest -s benchmarks/bench_engine_cache.py
"""

import os
import time

import pytest

from repro.bench import get_benchmark
from repro.core import EvaluationEngine, sweep_bounds
from repro.experiments import ExperimentTable, paper_data
from repro.library import paper_library

from benchjson import write_bench_json

WORKLOADS = ("fir", "ew", "diffeq")


def _run_grid(benchmark: str, engine: EvaluationEngine):
    graph = get_benchmark(benchmark)
    library = paper_library()
    grid = paper_data.table2_grid(benchmark)
    latencies = sorted({latency for latency, _ in grid})
    areas = sorted({area for _, area in grid})
    started = time.perf_counter()
    points = sweep_bounds(graph, library, latencies, areas, engine=engine)
    elapsed = time.perf_counter() - started
    return points, elapsed


@pytest.fixture(scope="module")
def measurements():
    rows = {}
    for benchmark in WORKLOADS:
        cold = EvaluationEngine(cache=False)
        warm = EvaluationEngine()
        cold_points, cold_time = _run_grid(benchmark, cold)
        warm_points, warm_time = _run_grid(benchmark, warm)
        rows[benchmark] = {
            "cold_points": cold_points,
            "warm_points": warm_points,
            "cold_time": cold_time,
            "warm_time": warm_time,
            "cold_stats": cold.stats,
            "warm_stats": warm.stats,
        }
    return rows


def test_engine_cache_speedup(measurements):
    table = ExperimentTable(
        title="Evaluation-engine cache on the Table 2 sweep grids",
        headers=("benchmark", "grid", "seed-path s", "engine s", "speedup",
                 "evals", "evals/s", "hit rate", "schedules saved"),
    )
    total_cold = 0.0
    total_warm = 0.0
    for benchmark, row in measurements.items():
        cold_stats, warm_stats = row["cold_stats"], row["warm_stats"]
        speedup = row["cold_time"] / row["warm_time"]
        total_cold += row["cold_time"]
        total_warm += row["warm_time"]
        table.add_row(
            benchmark,
            len(row["warm_points"]),
            round(row["cold_time"], 3),
            round(row["warm_time"], 3),
            round(speedup, 2),
            warm_stats.requests,
            round(warm_stats.evaluations_per_second),
            warm_stats.hit_rate,
            cold_stats.schedules_run - warm_stats.schedules_run,
        )
    overall = total_cold / total_warm
    table.add_note(f"overall speedup {overall:.2f}x "
                   f"({total_cold:.2f}s -> {total_warm:.2f}s)")
    print("\n" + table.as_text())
    write_bench_json("engine_cache", {
        "workloads": {
            benchmark: {
                "grid_points": len(row["warm_points"]),
                "seed_path_s": row["cold_time"],
                "engine_s": row["warm_time"],
                "speedup": row["cold_time"] / row["warm_time"],
                "hit_rate": row["warm_stats"].hit_rate,
                "schedules_saved": (row["cold_stats"].schedules_run
                                    - row["warm_stats"].schedules_run),
            }
            for benchmark, row in measurements.items()
        },
        "overall_speedup": overall,
    })
    # the engine must earn its keep: >= 2x on the combined Table 2
    # grids on a quiet machine.  The seed path (cache=False) is the
    # full original algorithms — reference kernels, no memo layers —
    # while the engine side now also rides the compiled scheduling
    # core, so this measures the engine's whole win over the seed.
    # Shared CI runners have noisy clocks, so there the wall-clock bar
    # is only a loose sanity check — the deterministic assertions
    # below carry the correctness claim.
    floor = float(os.environ.get(
        "ENGINE_BENCH_MIN_SPEEDUP", "1.2" if os.environ.get("CI") else "2.0"))
    assert overall >= floor, f"expected >= {floor}x, measured {overall:.2f}x"
    for benchmark, row in measurements.items():
        assert row["warm_stats"].hits > 0, f"{benchmark}: no cache hits"
        assert (row["warm_stats"].schedules_run
                < row["cold_stats"].schedules_run), benchmark


def test_engine_results_identical_to_seed_path(measurements):
    for benchmark, row in measurements.items():
        for cold, warm in zip(row["cold_points"], row["warm_points"]):
            assert (cold.latency_bound, cold.area_bound) == \
                (warm.latency_bound, warm.area_bound)
            if cold.result is None:
                assert warm.result is None, (benchmark, cold.latency_bound)
                continue
            assert warm.result is not None, (benchmark, cold.latency_bound)
            assert cold.result.area == warm.result.area
            assert cold.result.latency == warm.result.latency
            assert cold.result.reliability == warm.result.reliability
            assert cold.result.schedule.starts == warm.result.schedule.starts
