"""Benchmark: regenerate Figure 5 (example DFG schedules)."""

import pytest

from repro.experiments import fig5_schedules, run_fig5


def test_fig5(once):
    table = once(run_fig5)
    print("\n" + table.as_text())
    print("\n" + fig5_schedules())
    rows = {row[0]: row for row in table.rows}
    # schedule (a): exactly the paper's 0.969^6
    assert rows["(a) type-2 only"][5] == pytest.approx(0.82783, abs=5e-5)
    # schedule (b): at the completion-semantics bound our design is at
    # least as reliable as the paper's mixed schedule
    assert rows["(b) ours, Ld=6"][5] >= 0.90713 - 5e-5
    # and mixing versions beats the single-version design
    assert rows["(b) ours, Ld=6"][5] > rows["(a) type-2 only"][5]
