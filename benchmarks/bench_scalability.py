"""Performance benchmarks of the synthesis primitives.

Two kinds of measurement live here:

* true pytest-benchmark measurements (multiple rounds) of the
  substrate's hot paths, so regressions in the schedulers or the full
  flow show up as timing changes;
* the **batched-evaluation scalability gate** — cold evaluation of
  whole request batches through the lockstep kernels
  (``hls/fastsched.batched_density_schedules`` and
  ``core/engine.evaluate_batch``) versus the per-item fast path and
  the dict-based reference, on growing ``random_dag`` families and on
  the Table 2 grids.  It asserts the three paths select **identical
  designs** (the correctness gate) and that batching clears a
  wall-clock speedup floor (``SCALABILITY_MIN_SPEEDUP``; relaxed
  under ``CI`` where clocks are noisy).  Results are written to
  ``BENCH_scalability.json`` (schema in README.md).

Run the gate standalone (the CI perf-smoke job does, with ``--quick``):

    PYTHONPATH=src python benchmarks/bench_scalability.py
"""

import itertools
import os
import random
import time

from repro.bench import ewf, fir16, get_benchmark
from repro.dfg import random_dag, unit_delays
from repro.hls import density_schedule, left_edge_bind, list_schedule
from repro.hls.fastsched import (
    batched_density_schedules,
    fast_density_schedule,
)
from repro.library import paper_library
from repro.core import EvaluationEngine, find_design
from repro.experiments import ExperimentTable, paper_data

from benchjson import write_bench_json


def test_density_scheduler_speed(benchmark):
    graph = random_dag(60, seed=11)
    delays = unit_delays(graph)
    schedule = benchmark(density_schedule, graph, delays, 30)
    schedule.validate()


def test_list_scheduler_speed(benchmark):
    graph = random_dag(60, seed=11)
    library = paper_library()
    allocation = {op.op_id: library.fastest_smallest(op.rtype)
                  for op in graph}
    schedule = benchmark(list_schedule, graph, allocation,
                         {"adder2": 3, "mult2": 2})
    schedule.validate()


def test_binding_speed(benchmark):
    graph = fir16()
    library = paper_library()
    allocation = {op.op_id: library.fastest_smallest(op.rtype)
                  for op in graph}
    delays = {o: v.delay for o, v in allocation.items()}
    schedule = density_schedule(graph, delays, 11)
    binding = benchmark(left_edge_bind, schedule, allocation)
    binding.validate()


def test_find_design_speed_fir(benchmark):
    library = paper_library()
    result = benchmark.pedantic(
        find_design, args=(fir16(), library, 11, 9),
        rounds=3, iterations=1)
    assert result.meets_bounds()


def test_find_design_speed_ewf(benchmark):
    library = paper_library()
    result = benchmark.pedantic(
        find_design, args=(ewf(), library, 14, 9),
        rounds=3, iterations=1)
    assert result.meets_bounds()


# ----------------------------------------------------------------------
# batched-evaluation scalability gate
# ----------------------------------------------------------------------

CURVE_SIZES = (24, 48, 96)
CURVE_VARIANTS = 12  # delay/latency columns batched per graph
TABLE2_WORKLOADS = ("fir", "ew", "diffeq")


def _curve_requests(graph, seed):
    """CURVE_VARIANTS (delays, latency) requests with library delays
    and a small latency slack — the shape a sweep's memo misses have."""
    library = paper_library()
    rng = random.Random(seed)
    choices = {op.op_id: [v.delay for v in library.versions_of(op.rtype)]
               for op in graph}
    requests = []
    for _ in range(CURVE_VARIANTS):
        delays = {op_id: rng.choice(ds) for op_id, ds in choices.items()}
        critical = fast_density_schedule(graph, delays, None).latency
        requests.append((delays, critical + rng.randint(0, 3)))
    return requests


def _best_of(reps, func):
    best = result = None
    for _ in range(reps):
        started = time.perf_counter()
        result = func()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def measure_curve(quick=False):
    """Cold kernel scaling: reference vs fast loop vs one batched call
    on growing random-DAG families (identical starts asserted)."""
    sizes = CURVE_SIZES[:1] if quick else CURVE_SIZES
    reps = 1 if quick else 3
    rows = {}
    for size in sizes:
        graph = random_dag(size, seed=900 + size)
        requests = _curve_requests(graph, seed=17 * size)
        ref_time, ref = _best_of(reps, lambda: [
            density_schedule(graph, delays, latency)
            for delays, latency in requests])
        fast_time, fast = _best_of(reps, lambda: [
            fast_density_schedule(graph, delays, latency)
            for delays, latency in requests])
        bat_time, bat = _best_of(
            reps, lambda: batched_density_schedules(graph, requests))
        for r, f, b in zip(ref, fast, bat):
            assert r.starts == f.starts == b.starts, size
        rows[size] = {
            "requests": len(requests),
            "reference_s": ref_time,
            "fast_s": fast_time,
            "batched_s": bat_time,
            "batched_speedup_over_fast": fast_time / bat_time,
            "batched_speedup_over_reference": ref_time / bat_time,
        }
    return rows


def _table2_allocations(graph):
    """Table-2-style uniform allocations: one library version per
    rtype, every combination."""
    library = paper_library()
    rtypes = sorted({op.rtype for op in graph})
    allocations = []
    for combo in itertools.product(
            *(library.versions_of(rt) for rt in rtypes)):
        pick = dict(zip(rtypes, combo))
        allocations.append({op.op_id: pick[op.rtype] for op in graph})
    return allocations


def _design_key(index, evaluation):
    """Byte-comparable identity of a selected design."""
    if evaluation is None:
        return None
    return repr((index, evaluation.area, evaluation.latency,
                 tuple(sorted(evaluation.schedule.starts.items())))
                ).encode()


def _run_table2_mode(graph, allocations, lds, mode):
    """One cold grid evaluation; returns (engine, selected designs).

    All modes walk the latency bounds in the same (descending) order;
    the batched mode submits each bound's whole allocation grid to
    :meth:`EvaluationEngine.evaluate_batch` in one call.
    """
    impl = "reference" if mode == "reference" else "fast"
    engine = EvaluationEngine(scheduler="density", scheduler_impl=impl)
    selected = []
    for ld in lds:
        if mode == "batched":
            evaluations = engine.evaluate_batch(graph, allocations, ld)
        else:
            evaluations = [engine.evaluate(graph, allocation, ld)
                           for allocation in allocations]
        winner = min(
            ((ev.area, idx) for idx, ev in enumerate(evaluations)
             if ev is not None), default=None)
        selected.append(None if winner is None else
                        _design_key(winner[1], evaluations[winner[1]]))
    return engine, selected


def measure_table2(quick=False):
    """The ISSUE gate: cold Table 2 grids, batched vs per-item vs
    reference, byte-identical selected designs asserted."""
    reps = 1 if quick else 7
    rows = {}
    totals = {"reference": 0.0, "sequential": 0.0, "batched": 0.0}
    for benchmark in TABLE2_WORKLOADS:
        graph = get_benchmark(benchmark)
        allocations = _table2_allocations(graph)
        lds = sorted({ld for ld, _ in paper_data.table2_grid(benchmark)},
                     reverse=True)
        times = {}
        designs = {}
        stats = None
        for mode in ("reference", "sequential", "batched"):
            elapsed, (engine, selected) = _best_of(
                reps, lambda m=mode: _run_table2_mode(
                    graph, allocations, lds, m))
            times[mode] = elapsed
            designs[mode] = selected
            if mode == "batched":
                stats = engine.stats
        assert designs["batched"] == designs["sequential"] \
            == designs["reference"], benchmark
        for mode, elapsed in times.items():
            totals[mode] += elapsed
        rows[benchmark] = {
            "allocations": len(allocations),
            "latency_bounds": lds,
            "reference_cold_s": times["reference"],
            "sequential_fast_cold_s": times["sequential"],
            "batched_cold_s": times["batched"],
            "batched_speedup_over_fast":
                times["sequential"] / times["batched"],
            "batched_speedup_over_reference":
                times["reference"] / times["batched"],
            "batch_fill": stats.batch_fill,
            "batched_evals": stats.batched_evals,
        }
    return rows, totals


def report(curve, table2, totals, floor=None):
    table = ExperimentTable(
        title="Batched evaluation: cold kernels and Table 2 grids",
        headers=("workload", "batch", "reference s", "per-item s",
                 "batched s", "vs per-item", "vs reference"),
    )
    for size, row in curve.items():
        table.add_row(
            f"random_dag({size})", row["requests"],
            round(row["reference_s"], 4), round(row["fast_s"], 4),
            round(row["batched_s"], 4),
            round(row["batched_speedup_over_fast"], 2),
            round(row["batched_speedup_over_reference"], 2),
        )
    for benchmark, row in table2.items():
        table.add_row(
            f"table2:{benchmark}", row["batched_evals"],
            round(row["reference_cold_s"], 4),
            round(row["sequential_fast_cold_s"], 4),
            round(row["batched_cold_s"], 4),
            round(row["batched_speedup_over_fast"], 2),
            round(row["batched_speedup_over_reference"], 2),
        )
    aggregate = totals["sequential"] / totals["batched"]
    table.add_note(
        f"Table 2 aggregate: batched {aggregate:.2f}x over the "
        f"per-item cold fast path, "
        f"{totals['reference'] / totals['batched']:.2f}x over reference")
    if floor is not None:
        table.add_note(f"asserted floor: {floor}x")
    path = write_bench_json("scalability", {
        "curve": {str(size): row for size, row in curve.items()},
        "table2": table2,
        "table2_totals_s": totals,
        "aggregate_batched_speedup_over_fast": aggregate,
        "aggregate_batched_speedup_over_reference":
            totals["reference"] / totals["batched"],
    })
    print("\n" + table.as_text())
    print(f"\nresults written to {path}")
    return aggregate


def test_batched_scalability_gate():
    curve = measure_curve()
    table2, totals = measure_table2()
    # design equivalence (asserted inside the measurements) is the hard
    # gate; the wall-clock floor documents the >= 2x acceptance claim
    # on a quiet machine and is deliberately loose on shared CI runners
    floor = float(os.environ.get(
        "SCALABILITY_MIN_SPEEDUP", "1.1" if os.environ.get("CI") else "1.5"))
    aggregate = report(curve, table2, totals, floor)
    assert aggregate >= floor, \
        f"expected >= {floor}x batched speedup, measured {aggregate:.2f}x"


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="single rep, smallest curve size (CI "
                             "smoke); only design mismatches fail, "
                             "never timing noise")
    args = parser.parse_args()
    if args.quick:
        curve = measure_curve(quick=True)
        table2, totals = measure_table2(quick=True)
        report(curve, table2, totals)
        print("batched == sequential == reference designs: ok")
    else:
        test_batched_scalability_gate()
