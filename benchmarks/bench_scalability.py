"""Performance benchmarks of the synthesis primitives.

These are true pytest-benchmark measurements (multiple rounds) of the
substrate's hot paths, so regressions in the schedulers or the full
flow show up as timing changes.
"""

from repro.bench import ewf, fir16
from repro.dfg import random_dag, unit_delays
from repro.hls import density_schedule, left_edge_bind, list_schedule
from repro.library import paper_library
from repro.core import find_design


def test_density_scheduler_speed(benchmark):
    graph = random_dag(60, seed=11)
    delays = unit_delays(graph)
    schedule = benchmark(density_schedule, graph, delays, 30)
    schedule.validate()


def test_list_scheduler_speed(benchmark):
    graph = random_dag(60, seed=11)
    library = paper_library()
    allocation = {op.op_id: library.fastest_smallest(op.rtype)
                  for op in graph}
    schedule = benchmark(list_schedule, graph, allocation,
                         {"adder2": 3, "mult2": 2})
    schedule.validate()


def test_binding_speed(benchmark):
    graph = fir16()
    library = paper_library()
    allocation = {op.op_id: library.fastest_smallest(op.rtype)
                  for op in graph}
    delays = {o: v.delay for o, v in allocation.items()}
    schedule = density_schedule(graph, delays, 11)
    binding = benchmark(left_edge_bind, schedule, allocation)
    binding.validate()


def test_find_design_speed_fir(benchmark):
    library = paper_library()
    result = benchmark.pedantic(
        find_design, args=(fir16(), library, 11, 9),
        rounds=3, iterations=1)
    assert result.meets_bounds()


def test_find_design_speed_ewf(benchmark):
    library = paper_library()
    result = benchmark.pedantic(
        find_design, args=(ewf(), library, 14, 9),
        rounds=3, iterations=1)
    assert result.meets_bounds()
