"""Benchmark: the compiled scheduling core on cold Table 2 sweeps.

The caches of PRs 1-3 made *repeated* evaluations cheap; this
benchmark measures the complementary claim of the compiled array-based
scheduling core (``dfg/compiled.py`` + ``hls/fastsched.py``): *cold*
evaluations — workloads the engine has never seen — are fast too.

Per Table 2 benchmark it runs the full (Ld, Ad) sweep three ways:

* ``reference``: a fresh engine forced onto the original dict-based
  kernels (``scheduler_impl="reference"``),
* ``fast``: a fresh engine on the compiled core (the default),
* ``warm``: the fast engine run again, answering from its caches.

It asserts the reference and fast paths produce **identical designs**
(start steps, areas, reliabilities) — the correctness gate — and that
the fast path clears a wall-clock speedup floor (``FASTSCHED_MIN_
SPEEDUP``; relaxed under ``CI`` where clocks are noisy, and the
equivalence assertions carry the claim).  Results are written to
``BENCH_fastsched.json`` (schema in README.md).

Run with ``-s`` to see the table:

    PYTHONPATH=src python -m pytest -s benchmarks/bench_fastsched.py

or standalone (the CI perf-smoke job does), where ``--quick`` trims
the grids and only the equivalence assertions can fail:

    PYTHONPATH=src python benchmarks/bench_fastsched.py --quick
"""

import os
import time

from repro.bench import get_benchmark
from repro.core import EvaluationEngine, sweep_bounds
from repro.experiments import ExperimentTable, paper_data
from repro.library import paper_library

from benchjson import write_bench_json

WORKLOADS = ("fir", "ew", "diffeq")


def _grid(benchmark: str, quick: bool = False):
    grid = paper_data.table2_grid(benchmark)
    latencies = sorted({latency for latency, _ in grid})
    areas = sorted({area for _, area in grid})
    if quick:
        latencies, areas = latencies[:2], areas[:2]
    return latencies, areas


def _run(benchmark: str, engine: EvaluationEngine, quick: bool = False):
    latencies, areas = _grid(benchmark, quick)
    graph = get_benchmark(benchmark)
    library = paper_library()
    started = time.perf_counter()
    points = sweep_bounds(graph, library, latencies, areas, engine=engine)
    return points, time.perf_counter() - started


def assert_identical_points(reference, fast, context: str) -> None:
    """The hard gate: the two scheduler cores must agree exactly."""
    assert len(reference) == len(fast), context
    for ref, fst in zip(reference, fast):
        where = (context, ref.latency_bound, ref.area_bound)
        assert (ref.latency_bound, ref.area_bound) == \
            (fst.latency_bound, fst.area_bound), where
        if ref.result is None:
            assert fst.result is None, where
            continue
        assert fst.result is not None, where
        assert ref.result.schedule.starts == fst.result.schedule.starts, where
        assert ref.result.area == fst.result.area, where
        assert ref.result.latency == fst.result.latency, where
        assert ref.result.reliability == fst.result.reliability, where


def measure(quick: bool = False):
    rows = {}
    for benchmark in WORKLOADS:
        reference = EvaluationEngine(scheduler_impl="reference")
        fast = EvaluationEngine(scheduler_impl="fast")
        ref_points, ref_time = _run(benchmark, reference, quick)
        fast_points, fast_time = _run(benchmark, fast, quick)
        _, warm_time = _run(benchmark, fast, quick)
        assert_identical_points(ref_points, fast_points, benchmark)
        rows[benchmark] = {
            "grid_points": len(fast_points),
            "reference_cold_s": ref_time,
            "fast_cold_s": fast_time,
            "fast_warm_s": warm_time,
            "cold_speedup": ref_time / fast_time,
            "warm_speedup_over_cold_fast": fast_time / warm_time,
            "fast_density_schedules": fast.stats.density_schedules,
            "fast_list_schedules": fast.stats.list_schedules,
        }
    return rows


def report(rows, floor=None):
    table = ExperimentTable(
        title="Compiled scheduling core on cold Table 2 sweep grids",
        headers=("benchmark", "grid", "reference s", "fast s", "speedup",
                 "warm s", "warm/fast-cold"),
    )
    total_ref = total_fast = 0.0
    for benchmark, row in rows.items():
        total_ref += row["reference_cold_s"]
        total_fast += row["fast_cold_s"]
        table.add_row(
            benchmark,
            row["grid_points"],
            round(row["reference_cold_s"], 3),
            round(row["fast_cold_s"], 3),
            round(row["cold_speedup"], 2),
            round(row["fast_warm_s"], 3),
            round(row["warm_speedup_over_cold_fast"], 2),
        )
    overall = total_ref / total_fast
    table.add_note(f"overall cold speedup {overall:.2f}x "
                   f"({total_ref:.2f}s -> {total_fast:.2f}s)")
    if floor is not None:
        table.add_note(f"asserted floor: {floor}x")
    path = write_bench_json("fastsched", {
        "workloads": rows,
        "overall_cold_speedup": overall,
        "reference_total_s": total_ref,
        "fast_total_s": total_fast,
    })
    print("\n" + table.as_text())
    print(f"\nresults written to {path}")
    return overall


def test_fastsched_cold_speedup():
    rows = measure()
    # equivalence (asserted inside measure) is the hard gate; the
    # wall-clock floor documents the perf claim on a quiet machine and
    # is deliberately loose on shared CI runners
    floor = float(os.environ.get(
        "FASTSCHED_MIN_SPEEDUP", "1.2" if os.environ.get("CI") else "5.0"))
    overall = report(rows, floor)
    assert overall >= floor, \
        f"expected >= {floor}x cold speedup, measured {overall:.2f}x"
    for benchmark, row in rows.items():
        assert row["fast_warm_s"] <= row["fast_cold_s"], benchmark


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="trim the grids (CI smoke); only scheduler "
                             "mismatches fail, never timing noise")
    args = parser.parse_args()
    if args.quick:
        report(measure(quick=True))
        print("fast == reference on the quick grids: ok")
    else:
        test_fastsched_cold_speedup()
