"""Benchmark: ablations of the flow's design choices (DESIGN.md §4)."""

from repro.experiments import (
    run_baseline_ablation,
    run_refine_ablation,
    run_repair_ablation,
    run_scheduler_ablation,
    run_sweep_ablation,
)


def test_repair_policy_ablation(once):
    table = once(run_repair_ablation)
    print("\n" + table.as_text())
    for row in table.rows:
        paper_rule, generalized = row[3], row[4]
        if paper_rule is not None and generalized is not None:
            assert generalized >= paper_rule - 1e-12


def test_refine_ablation(once):
    table = once(run_refine_ablation)
    print("\n" + table.as_text())
    improvements = 0
    for row in table.rows:
        no_refine, refine = row[3], row[4]
        if no_refine is not None and refine is not None:
            assert refine >= no_refine - 1e-12
            if refine > no_refine + 1e-9:
                improvements += 1
    assert improvements > 0  # the hill climb earns its keep somewhere


def test_sweep_ablation(once):
    table = once(run_sweep_ablation)
    print("\n" + table.as_text())
    for row in table.rows:
        single, sweep = row[3], row[4]
        if sweep is not None and single is not None:
            assert sweep >= single - 1e-12


def test_scheduler_ablation(once):
    table = once(run_scheduler_ablation)
    print("\n" + table.as_text())
    for row in table.rows:
        density, list_area, auto = row[2], row[3], row[4]
        assert auto is not None
        # auto takes the better of the two engines
        candidates = [a for a in (density, list_area) if a is not None]
        assert auto == min(candidates)


def test_baseline_version_ablation(once):
    table = once(run_baseline_ablation)
    print("\n" + table.as_text())
    for row in table.rows:
        fastest, adaptive = row[3], row[4]
        if fastest is not None and adaptive is not None:
            assert adaptive >= fastest - 1e-12
