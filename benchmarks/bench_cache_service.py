"""Benchmark: the evaluation service under multi-client load.

PR 7 turned the cache sidecar into a network service: TCP transport
with a safe json wire encoding, an event-loop server core, and a
``synthesize`` RPC that runs whole searches server-side.  This
benchmark puts numbers behind both halves:

* **load generator** — ``WORKERS`` client processes replay real cache
  traffic (the layer entries a Table 2 search produces — schedules,
  evaluations, density points) against the same server over both
  transports, recording per-request p50/p99 latency and aggregate
  throughput for AF_UNIX+pickle and TCP+json;
* **remote synthesize** — the Table 2 grids are swept twice, once via
  the ``synthesize`` RPC of a TCP server and once locally, and every
  selected design must be identical (the acceptance gate; timing is
  reported but never asserted — the equivalence carries the claim);
* **RPC batch window** — the same 4 clients drive ``evaluate_batch``
  jobs at an unwindowed and a windowed (``batch_window``) server;
  the windowed run must aggregate (mean ``window_fill`` > 1.5
  items per merged flush) and return results identical to the
  unwindowed server and to local compute.  The throughput delta is
  reported, never asserted — equivalence and fill carry the claim.

Results land in ``BENCH_cache_service.json`` (schema in README.md).

Run with ``-s`` to see the table::

    PYTHONPATH=src python -m pytest -s benchmarks/bench_cache_service.py

or standalone (the CI smoke job does), where ``--quick`` trims the
traffic and the grid::

    PYTHONPATH=src python benchmarks/bench_cache_service.py --quick
"""

import multiprocessing
import statistics
import time

from repro.bench import get_benchmark
from repro.core import CacheServer, EvaluationEngine, find_design
from repro.core.cache_server import CacheClient
from repro.errors import NoSolutionError
from repro.experiments import ExperimentTable, paper_data
from repro.library import paper_library

from benchjson import write_bench_json

WORKERS = 4
ROUNDS = 6
QUICK_ROUNDS = 2
WINDOW_ROUNDS = 10
QUICK_WINDOW_ROUNDS = 4
BATCH_WINDOW_S = 0.01
AUTH_TOKEN = "bench-cache-service"
WORKLOADS = ("fir", "ew", "diffeq")


def _traffic_entries():
    """Real layer records to replay: export a warmed engine's caches."""
    engine = EvaluationEngine()
    library = paper_library()
    find_design(get_benchmark("diffeq"), library, 8, 20, engine=engine)
    return [(layer, key, value)
            for layer, entries in engine.export_cache_state().items()
            for key, value in entries]


def _client_worker(address, token, entries, rounds, worker_id, out):
    """One load-generator process: timed puts then timed gets."""
    try:
        client = CacheClient(address, auth_token=token, timeout=60.0)
        latencies = []
        for round_no in range(rounds):
            for layer, key, value in entries:
                unique = key + ("w", worker_id, round_no)
                started = time.perf_counter()
                client.put(layer, unique, value)
                latencies.append(time.perf_counter() - started)
            for layer, key, _value in entries:
                unique = key + ("w", worker_id, round_no)
                started = time.perf_counter()
                found = client.get(layer, unique)[0]
                latencies.append(time.perf_counter() - started)
                assert found, (layer, unique)
        client.close()
        out.put((worker_id, latencies))
    except Exception as exc:  # pragma: no cover - failure reporting
        out.put((worker_id, repr(exc)))


def _drive_transport(address, token, entries, rounds):
    """Fan WORKERS load processes at *address*; aggregate latencies."""
    context = multiprocessing.get_context("fork")
    out = context.Queue()
    processes = [
        context.Process(target=_client_worker,
                        args=(address, token, entries, rounds, i, out))
        for i in range(WORKERS)
    ]
    started = time.perf_counter()
    for process in processes:
        process.start()
    latencies = []
    for _ in processes:
        worker_id, payload = out.get(timeout=600.0)
        assert isinstance(payload, list), \
            f"load worker {worker_id} failed: {payload}"
        latencies.extend(payload)
    wall = time.perf_counter() - started
    for process in processes:
        process.join(timeout=60.0)
        assert process.exitcode == 0
    latencies.sort()
    quantiles = statistics.quantiles(latencies, n=100)
    return {
        "workers": WORKERS,
        "ops": len(latencies),
        "wall_s": wall,
        "throughput_ops_s": len(latencies) / wall,
        "p50_ms": statistics.median(latencies) * 1e3,
        "p99_ms": quantiles[98] * 1e3,
        "max_ms": latencies[-1] * 1e3,
    }


def measure_load(quick=False):
    """Replay the same traffic against a unix and a tcp server."""
    entries = _traffic_entries()
    rounds = QUICK_ROUNDS if quick else ROUNDS
    results = {}
    with CacheServer() as server:  # AF_UNIX in a server-owned temp dir
        results["unix"] = _drive_transport(server.address, None,
                                           entries, rounds)
        results["unix"]["server_stats"] = server.stats.as_dict()
    with CacheServer("tcp://127.0.0.1:0", auth_token=AUTH_TOKEN) as server:
        results["tcp"] = _drive_transport(server.address, AUTH_TOKEN,
                                          entries, rounds)
        results["tcp"]["server_stats"] = server.stats.as_dict()
    for transport, row in results.items():
        stats = row["server_stats"]
        expected = WORKERS * rounds * len(entries)
        assert stats["puts"] == expected, (transport, stats["puts"])
        assert stats["gets"] == expected and stats["hits"] == expected, \
            (transport, stats["gets"], stats["hits"])
        assert stats["bad_frames"] == 0 and stats["auth_failures"] == 0
    return {"rounds": rounds, "entries": len(entries),
            "transports": results}


def _design_fingerprint(result):
    if result is None:
        return None
    return (result.area, result.latency, result.reliability,
            dict(result.schedule.starts),
            dict(result.binding.op_to_instance))


def _eval_fingerprints(evals):
    return [None if e is None else
            (e.latency, e.area, tuple(sorted(e.schedule.starts.items())))
            for e in evals]


def _window_allocations(graph, quick):
    """A deterministic allocation set sized so one cold merged call
    outlasts the client round trips (the window needs work to batch)."""
    import itertools

    library = paper_library()
    rtypes = sorted({op.rtype for op in graph})
    allocations = []
    for pick in itertools.product(
            *(library.versions_of(rtype) for rtype in rtypes)):
        chosen = dict(zip(rtypes, pick))
        allocations.append(
            {op.op_id: chosen[op.rtype] for op in graph})
    return allocations[:8 if quick else 16]


def _window_worker(address, rounds, base_latency, quick, worker_id, out):
    """One fleet client: a fresh (cold) evaluate_batch job per round."""
    try:
        graph = get_benchmark("diffeq")
        allocations = _window_allocations(graph, quick)
        client = CacheClient(address, timeout=60.0, job_timeout=600.0)
        fingerprints = []
        for round_no in range(rounds):
            # every round raises the bound: cold for the whole fleet,
            # identical across the fleet, so windows have work to
            # aggregate *and* deduplicate
            evals = client.evaluate_batch(graph, allocations,
                                          base_latency + round_no)
            fingerprints.append(_eval_fingerprints(evals))
        client.close()
        out.put((worker_id, fingerprints))
    except Exception as exc:  # pragma: no cover - failure reporting
        out.put((worker_id, repr(exc)))


def _drive_window_clients(address, rounds, base_latency, quick):
    context = multiprocessing.get_context("fork")
    out = context.Queue()
    processes = [
        context.Process(target=_window_worker,
                        args=(address, rounds, base_latency, quick,
                              i, out))
        for i in range(WORKERS)
    ]
    started = time.perf_counter()
    for process in processes:
        process.start()
    results = {}
    for _ in processes:
        worker_id, payload = out.get(timeout=600.0)
        assert isinstance(payload, list), \
            f"window client {worker_id} failed: {payload}"
        results[worker_id] = payload
    wall = time.perf_counter() - started
    for process in processes:
        process.join(timeout=60.0)
        assert process.exitcode == 0
    jobs = WORKERS * rounds
    return results, {
        "clients": WORKERS,
        "jobs": jobs,
        "wall_s": wall,
        "jobs_s": jobs / wall,
    }


def measure_window(quick=False):
    """4-client evaluate_batch load, windowed vs unwindowed.

    Both servers must return results identical to each other and to a
    local engine-off run; the windowed server must additionally show
    real aggregation (mean fill > 1.5 items per merged flush — the
    ISSUE 9 acceptance gate).  Throughput is reported, not asserted.
    """
    rounds = QUICK_WINDOW_ROUNDS if quick else WINDOW_ROUNDS
    base_latency = 8
    graph = get_benchmark("diffeq")
    allocations = _window_allocations(graph, quick)
    local = [
        _eval_fingerprints(EvaluationEngine(cache=False).evaluate_batch(
            graph, allocations, base_latency + round_no))
        for round_no in range(rounds)
    ]
    report_rows = {}
    fleets = {}
    for mode, batch_window in (("unwindowed", 0.0),
                               ("windowed", BATCH_WINDOW_S)):
        with CacheServer(batch_window=batch_window) as server:
            fleet, row = _drive_window_clients(server.address, rounds,
                                               base_latency, quick)
            stats = server.stats.as_dict()
        row["window_batches"] = stats["window_batches"]
        row["window_items"] = stats["window_items"]
        row["window_fill"] = stats["window_fill"]
        row["window_wait_p99_ms"] = stats["window_wait_p99"] * 1e3
        report_rows[mode] = row
        fleets[mode] = fleet
    for mode, fleet in fleets.items():
        for worker_id, fingerprints in fleet.items():
            assert fingerprints == local, \
                f"{mode} client {worker_id} diverged from local compute"
    unwindowed = report_rows["unwindowed"]
    windowed = report_rows["windowed"]
    assert unwindowed["window_batches"] == 0, \
        "the unwindowed server must never aggregate"
    assert windowed["window_items"] == WORKERS * rounds, \
        "every windowed job must pass through the window accounting"
    assert windowed["window_fill"] > 1.5, (
        f"windowed fleet load only filled "
        f"{windowed['window_fill']:.2f} items/batch")
    return {
        "rounds": rounds,
        "allocations": len(allocations),
        "batch_window_ms": BATCH_WINDOW_S * 1e3,
        "unwindowed": unwindowed,
        "windowed": windowed,
        "throughput_ratio": windowed["jobs_s"] / unwindowed["jobs_s"],
        "results_identical": True,
    }


def _grid(benchmark, quick):
    grid = paper_data.table2_grid(benchmark)
    latencies = sorted({latency for latency, _ in grid})
    areas = sorted({area for _, area in grid})
    if quick:
        # the loosest bounds: the trimmed grid must keep feasible
        # points, or the quick gate would compare nothing but misses
        latencies, areas = latencies[-2:], areas[-2:]
    return [(latency, area) for latency in latencies for area in areas]


def measure_synthesize(quick=False):
    """Sweep the Table 2 grids through the synthesize RPC vs locally."""
    library = paper_library()
    workloads = ("diffeq",) if quick else WORKLOADS
    rows = {}
    with CacheServer("tcp://127.0.0.1:0", auth_token=AUTH_TOKEN) as server:
        client = CacheClient(server.address, auth_token=AUTH_TOKEN)
        for benchmark in workloads:
            graph = get_benchmark(benchmark)
            pairs = _grid(benchmark, quick)
            remote, local = [], []
            remote_started = time.perf_counter()
            for latency_bound, area_bound in pairs:
                try:
                    remote.append(client.synthesize(
                        graph, library, latency_bound, area_bound))
                except NoSolutionError:
                    remote.append(None)
            remote_time = time.perf_counter() - remote_started
            engine = EvaluationEngine()
            local_started = time.perf_counter()
            for latency_bound, area_bound in pairs:
                try:
                    local.append(find_design(graph, library, latency_bound,
                                             area_bound, engine=engine))
                except NoSolutionError:
                    local.append(None)
            local_time = time.perf_counter() - local_started
            mismatches = [
                pair for pair, ours, theirs in zip(pairs, local, remote)
                if _design_fingerprint(ours) != _design_fingerprint(theirs)
            ]
            assert not mismatches, \
                f"{benchmark}: remote != local at {mismatches}"
            rows[benchmark] = {
                "grid_points": len(pairs),
                "feasible_points": sum(1 for r in local if r is not None),
                "remote_s": remote_time,
                "local_s": local_time,
                "designs_identical": True,
            }
        client.close()
        streamed = server.stats.designs_streamed
    return {"workloads": rows, "designs_streamed": streamed}


def report(load, synthesize, window):
    table = ExperimentTable(
        title=f"Evaluation service under load (workers={WORKERS})",
        headers=("transport", "ops", "p50 ms", "p99 ms", "max ms",
                 "ops/s", "server puts", "server hits"),
    )
    for transport, row in load["transports"].items():
        stats = row["server_stats"]
        table.add_row(
            transport,
            row["ops"],
            round(row["p50_ms"], 3),
            round(row["p99_ms"], 3),
            round(row["max_ms"], 3),
            int(row["throughput_ops_s"]),
            int(stats["puts"]),
            int(stats["hits"]),
        )
    unix_p50 = load["transports"]["unix"]["p50_ms"]
    tcp_p50 = load["transports"]["tcp"]["p50_ms"]
    table.add_note(f"tcp/unix p50 ratio {tcp_p50 / unix_p50:.2f}")
    rpc = ExperimentTable(
        title="Remote synthesize vs local compute (Table 2 grids)",
        headers=("benchmark", "grid", "feasible", "remote s", "local s",
                 "identical"),
    )
    for benchmark, row in synthesize["workloads"].items():
        rpc.add_row(
            benchmark,
            row["grid_points"],
            row["feasible_points"],
            round(row["remote_s"], 3),
            round(row["local_s"], 3),
            "yes" if row["designs_identical"] else "NO",
        )
    rpc.add_note(f"improving designs streamed: "
                 f"{synthesize['designs_streamed']}")
    batching = ExperimentTable(
        title=f"RPC batch window under fleet load (clients={WORKERS}, "
              f"window={window['batch_window_ms']:.0f} ms)",
        headers=("mode", "jobs", "jobs/s", "batches", "fill",
                 "wait p99 ms", "identical"),
    )
    for mode in ("unwindowed", "windowed"):
        row = window[mode]
        batching.add_row(
            mode,
            row["jobs"],
            round(row["jobs_s"], 2),
            int(row["window_batches"]),
            round(row["window_fill"], 2),
            round(row["window_wait_p99_ms"], 3),
            "yes" if window["results_identical"] else "NO",
        )
    batching.add_note(
        f"windowed/unwindowed throughput ratio "
        f"{window['throughput_ratio']:.2f}")
    path = write_bench_json("cache_service", {
        "load": load,
        "synthesize": synthesize,
        "window": window,
    })
    print("\n" + table.as_text())
    print("\n" + rpc.as_text())
    print("\n" + batching.as_text())
    print(f"\nresults written to {path}")


def test_cache_service_load_and_rpc():
    load = measure_load()
    synthesize = measure_synthesize()
    window = measure_window()
    report(load, synthesize, window)
    for transport, row in load["transports"].items():
        assert row["p50_ms"] > 0.0 and row["p99_ms"] >= row["p50_ms"], \
            transport
    for benchmark, row in synthesize["workloads"].items():
        assert row["designs_identical"], benchmark
    assert window["windowed"]["window_fill"] > 1.5
    assert window["results_identical"]


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="trim the traffic and the grid (CI smoke); "
                             "only design/fill mismatches fail, never "
                             "timing")
    args = parser.parse_args()
    if args.quick:
        report(measure_load(quick=True), measure_synthesize(quick=True),
               measure_window(quick=True))
        print("remote synthesize == local compute on the quick grid: ok")
    else:
        test_cache_service_load_and_rpc()
