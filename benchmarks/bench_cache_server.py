"""Benchmark: live shared-cache service on the Table 2 sweeps.

PR 2's cross-process persistence only exchanges caches at fork/join
boundaries: a cold ``workers=4`` sweep still computes every
overlapping grid point up to 4 times over, because workers cannot see
each other's results until the join.  The live cache server closes
that window — workers attach to one shared service and hit each
other's evaluations *mid-run*.

This benchmark runs the paper's full Table 2 grids (fir, ew, diffeq)
cold through both sharing modes and asserts the headline claims:

* the live-shared pass produces designs identical to the snapshot-mode
  pass and to a serial reference sweep (the correctness claim that
  carries the benchmark on noisy machines);
* the server observes a cross-process hit rate > 0 — workers really do
  consume each other's results while running;
* live sharing is wall-clock competitive with the PR 2 pre-warm/merge
  path on a cold start (``CACHE_SERVER_BENCH_TOLERANCE`` to tune;
  relaxed on CI runners).

Run with ``-s`` to see the table::

    PYTHONPATH=src python -m pytest -s benchmarks/bench_cache_server.py
"""

import os
import time

import pytest

from repro.bench import get_benchmark
from repro.core import CacheServer, EvaluationEngine, sweep_bounds
from repro.experiments import ExperimentTable, paper_data
from repro.library import paper_library

WORKLOADS = ("fir", "ew", "diffeq")
WORKERS = 4


def _grid(benchmark):
    grid = paper_data.table2_grid(benchmark)
    return (sorted({latency for latency, _ in grid}),
            sorted({area for _, area in grid}))


def _run_grid(benchmark, **kwargs):
    graph = get_benchmark(benchmark)
    library = paper_library()
    latencies, areas = _grid(benchmark)
    started = time.perf_counter()
    points = sweep_bounds(graph, library, latencies, areas, **kwargs)
    return points, time.perf_counter() - started


@pytest.fixture(scope="module")
def measurements(reference_kernels):
    # reference kernels (see conftest): sharing targets the
    # expensive-compute regime; the compiled core covers the cold path
    rows = {}
    for benchmark in WORKLOADS:
        snapshot_points, snapshot_time = _run_grid(
            benchmark, workers=WORKERS, engine=EvaluationEngine())
        with CacheServer() as server:
            live_points, live_time = _run_grid(
                benchmark, workers=WORKERS, engine=EvaluationEngine(),
                cache_server=server.address)
            server_stats = server.stats.as_dict()
            server_entries = server.entry_count()
        serial_points, _ = _run_grid(benchmark, engine=EvaluationEngine())
        rows[benchmark] = {
            "snapshot_points": snapshot_points,
            "live_points": live_points,
            "serial_points": serial_points,
            "snapshot_time": snapshot_time,
            "live_time": live_time,
            "server_stats": server_stats,
            "server_entries": server_entries,
        }
    return rows


def test_live_sharing_is_wall_clock_competitive(measurements):
    table = ExperimentTable(
        title=f"Live cache server on Table 2 sweeps (workers={WORKERS})",
        headers=("benchmark", "grid", "snapshot s", "live s", "speedup",
                 "server hits", "hit rate", "entries"),
    )
    total_snapshot = 0.0
    total_live = 0.0
    for benchmark, row in measurements.items():
        total_snapshot += row["snapshot_time"]
        total_live += row["live_time"]
        stats = row["server_stats"]
        table.add_row(
            benchmark,
            len(row["live_points"]),
            round(row["snapshot_time"], 3),
            round(row["live_time"], 3),
            round(row["snapshot_time"] / row["live_time"], 2),
            int(stats["hits"]),
            round(stats["hit_rate"], 3),
            row["server_entries"],
        )
    ratio = total_live / total_snapshot
    table.add_note(f"live/snapshot wall-clock ratio {ratio:.2f} "
                   f"({total_snapshot:.2f}s -> {total_live:.2f}s)")
    print("\n" + table.as_text())
    # live sharing must not lose to the fork/join-only path; CI
    # runners get a looser bar — the equivalence tests below carry the
    # correctness claim there
    ceiling = float(os.environ.get(
        "CACHE_SERVER_BENCH_TOLERANCE",
        "1.25" if os.environ.get("CI") else "1.0"))
    assert ratio <= ceiling, \
        f"live sharing is {ratio:.2f}x the snapshot path " \
        f"(allowed {ceiling}x)"


def test_cross_process_hit_rate_is_positive(measurements):
    """Workers must actually consume each other's results mid-run."""
    for benchmark, row in measurements.items():
        stats = row["server_stats"]
        assert stats["hits"] > 0, \
            f"{benchmark}: no cross-process cache hits on the server"
        assert stats["adopted"] > 0, \
            f"{benchmark}: workers published nothing"
        assert row["server_entries"] > 0, benchmark


def test_all_passes_produce_identical_designs(measurements):
    for benchmark, row in measurements.items():
        for snap, live, serial in zip(row["snapshot_points"],
                                      row["live_points"],
                                      row["serial_points"]):
            key = (benchmark, snap.latency_bound, snap.area_bound)
            assert (snap.latency_bound, snap.area_bound) == \
                (live.latency_bound, live.area_bound) == \
                (serial.latency_bound, serial.area_bound)
            if snap.result is None:
                assert live.result is None and serial.result is None, key
                continue
            for other in (live.result, serial.result):
                assert other is not None, key
                assert snap.result.area == other.area, key
                assert snap.result.latency == other.latency, key
                assert snap.result.reliability == other.reliability, key
                assert snap.result.schedule.starts == \
                    other.schedule.starts, key
