"""Benchmark: regenerate Table 2(c) — differential equation solver."""

import pytest

from repro.experiments import run_table2


def test_table2c_diffeq(once):
    table = once(run_table2, "diffeq")
    print("\n" + table.as_text())
    cells = {(row[0], row[1]): row for row in table.rows}

    # exact paper matches
    assert cells[(5, 11)][2] == pytest.approx(0.70723, abs=5e-5)  # ref3
    assert cells[(5, 11)][3] >= 0.77497 - 5e-5                    # ours

    for (latency_bound, area_bound), row in cells.items():
        ref3, ours, combined = row[2], row[3], row[5]
        assert ours is not None
        if ref3 is not None:
            assert ours >= ref3 - 1e-12
        if combined is not None:
            assert combined >= ours - 1e-12


def test_table2c_versions_accounting(once):
    table = once(run_table2, "diffeq", area_model="versions")
    print("\n" + table.as_text())
    cells = {(row[0], row[1]): row for row in table.rows}
    # the paper's (7, 7) = 0.90260 (0.999^8 * 0.969^3) under its
    # accounting — we reach at least it
    assert cells[(7, 7)][3] >= 0.90260 - 5e-5
